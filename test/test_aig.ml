(* AIG tests: local simplification rules, structural hashing, evaluation,
   and the Tseitin CNF emitter cross-checked against evaluation. *)

let test_constants () =
  Alcotest.(check int) "not false" Aig.true_ (Aig.not_ Aig.false_);
  Alcotest.(check int) "not true" Aig.false_ (Aig.not_ Aig.true_);
  Alcotest.(check int) "of_bool" Aig.true_ (Aig.of_bool true)

let test_simplifications () =
  let g = Aig.create () in
  let x = Aig.fresh_input g in
  Alcotest.(check int) "x & 0 = 0" Aig.false_ (Aig.and_ g x Aig.false_);
  Alcotest.(check int) "x & 1 = x" x (Aig.and_ g x Aig.true_);
  Alcotest.(check int) "x & x = x" x (Aig.and_ g x x);
  Alcotest.(check int) "x & ~x = 0" Aig.false_ (Aig.and_ g x (Aig.not_ x));
  Alcotest.(check int) "no gate created" 0 (Aig.num_ands g)

let test_hash_consing () =
  let g = Aig.create () in
  let x = Aig.fresh_input g and y = Aig.fresh_input g in
  let a1 = Aig.and_ g x y in
  let a2 = Aig.and_ g y x in
  Alcotest.(check int) "commutative sharing" a1 a2;
  Alcotest.(check int) "one gate" 1 (Aig.num_ands g);
  let o1 = Aig.or_ g x y and o2 = Aig.or_ g x y in
  Alcotest.(check int) "or shared" o1 o2

let test_eval_gates () =
  let g = Aig.create () in
  let x = Aig.fresh_input g and y = Aig.fresh_input g in
  let check name f lit =
    List.iter
      (fun (vx, vy) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s(%b,%b)" name vx vy)
          (f vx vy)
          (Aig.eval g [| vx; vy |] lit))
      [ (false, false); (false, true); (true, false); (true, true) ]
  in
  check "and" ( && ) (Aig.and_ g x y);
  check "or" ( || ) (Aig.or_ g x y);
  check "xor" ( <> ) (Aig.xor_ g x y);
  check "xnor" ( = ) (Aig.xnor_ g x y);
  check "implies" (fun a b -> (not a) || b) (Aig.implies g x y)

let test_eval_ite () =
  let g = Aig.create () in
  let c = Aig.fresh_input g and a = Aig.fresh_input g and b = Aig.fresh_input g in
  let m = Aig.ite g c a b in
  List.iter
    (fun (vc, va, vb) ->
      Alcotest.(check bool) "ite" (if vc then va else vb) (Aig.eval g [| vc; va; vb |] m))
    [
      (true, true, false); (true, false, true); (false, true, false); (false, false, true);
    ]

let test_input_index () =
  let g = Aig.create () in
  let x = Aig.fresh_input g and y = Aig.fresh_input g in
  Alcotest.(check (option int)) "x index" (Some 0) (Aig.input_index g x);
  Alcotest.(check (option int)) "y index" (Some 1) (Aig.input_index g y);
  Alcotest.(check (option int)) "complement keeps index" (Some 1)
    (Aig.input_index g (Aig.not_ y));
  Alcotest.(check (option int)) "gate is not input" None
    (Aig.input_index g (Aig.and_ g x y))

let test_and_or_lists () =
  let g = Aig.create () in
  Alcotest.(check int) "empty and" Aig.true_ (Aig.and_list g []);
  Alcotest.(check int) "empty or" Aig.false_ (Aig.or_list g []);
  let xs = List.init 4 (fun _ -> Aig.fresh_input g) in
  let conj = Aig.and_list g xs in
  Alcotest.(check bool) "all true" true (Aig.eval g [| true; true; true; true |] conj);
  Alcotest.(check bool) "one false" false (Aig.eval g [| true; false; true; true |] conj)

(* CNF emitter agrees with evaluation, checked exhaustively on random
   small circuits: for every input assignment, SAT-under-assumptions of
   (circuit = expected) must be satisfiable, and of (circuit <> expected)
   unsatisfiable. *)
let random_circuit rand n_inputs n_gates =
  let g = Aig.create () in
  let inputs = Array.init n_inputs (fun _ -> Aig.fresh_input g) in
  let pool = ref (Array.to_list inputs @ [ Aig.true_; Aig.false_ ]) in
  let pick () =
    let l = List.nth !pool (Random.State.int rand (List.length !pool)) in
    if Random.State.bool rand then Aig.not_ l else l
  in
  for _ = 1 to n_gates do
    let a = pick () and b = pick () in
    let node =
      match Random.State.int rand 3 with
      | 0 -> Aig.and_ g a b
      | 1 -> Aig.or_ g a b
      | _ -> Aig.xor_ g a b
    in
    pool := node :: !pool
  done;
  (g, inputs, List.hd !pool)

let test_cnf_matches_eval () =
  let rand = Random.State.make [| 42 |] in
  for _trial = 1 to 50 do
    let n_inputs = 1 + Random.State.int rand 5 in
    let g, inputs, root = random_circuit rand n_inputs (5 + Random.State.int rand 20) in
    let solver = Sat.Solver.create () in
    let emitter = Aig.Cnf.make g solver in
    let root_sat = Aig.Cnf.sat_lit emitter root in
    let input_sats = Array.map (Aig.Cnf.sat_lit emitter) inputs in
    for assignment = 0 to (1 lsl n_inputs) - 1 do
      let values = Array.init n_inputs (fun i -> assignment land (1 lsl i) <> 0) in
      let expected = Aig.eval g values root in
      let assumptions =
        Array.to_list
          (Array.mapi
             (fun i l -> if values.(i) then l else Sat.Lit.negate l)
             input_sats)
      in
      let with_root = (if expected then root_sat else Sat.Lit.negate root_sat) :: assumptions in
      let against_root =
        (if expected then Sat.Lit.negate root_sat else root_sat) :: assumptions
      in
      if Sat.Solver.solve ~assumptions:with_root solver <> Sat.Solver.Sat then
        Alcotest.fail "CNF disagrees with eval (expected value unsat)";
      if Sat.Solver.solve ~assumptions:against_root solver <> Sat.Solver.Unsat then
        Alcotest.fail "CNF disagrees with eval (wrong value sat)"
    done
  done

(* ---- rewriting ---- *)

(* Each rewrite rule family fires on its textbook instance and the hit
   counter records it. *)
let test_rewrite_rules () =
  let g = Aig.create ~rewrite:true () in
  let x = Aig.fresh_input g and y = Aig.fresh_input g in
  let xy = Aig.and_ g x y in
  Alcotest.(check int) "absorption: x & (x & y) = x & y" xy (Aig.and_ g x xy);
  Alcotest.(check int) "annihilation: ~x & (x & y) = 0" Aig.false_
    (Aig.and_ g (Aig.not_ x) xy);
  Alcotest.(check int) "substitution: x & ~(x & y) = x & ~y" (Aig.and_ g x (Aig.not_ y))
    (Aig.and_ g x (Aig.not_ xy));
  Alcotest.(check int) "subsumption: x & ~(~x & y) = x" x
    (Aig.and_ g x (Aig.not_ (Aig.and_ g (Aig.not_ x) y)));
  let n1 = Aig.not_ (Aig.and_ g x y) and n2 = Aig.not_ (Aig.and_ g x (Aig.not_ y)) in
  Alcotest.(check int) "resolution: ~(x & y) & ~(x & ~y) = ~x" (Aig.not_ x)
    (Aig.and_ g n1 n2);
  Alcotest.(check bool) "rewrites counted" true (Aig.num_rewrites g > 0)

(* The same random structure built with rewriting on and off evaluates
   identically on every assignment, and rewriting never grows the graph. *)
let test_rewrite_eval_equiv () =
  let rand = Random.State.make [| 77 |] in
  for _trial = 1 to 50 do
    let n_inputs = 1 + Random.State.int rand 4 in
    let g0 = Aig.create () and g1 = Aig.create ~rewrite:true () in
    let inputs = Array.init n_inputs (fun _ -> (Aig.fresh_input g0, Aig.fresh_input g1)) in
    let pool =
      ref (Array.to_list inputs @ [ (Aig.true_, Aig.true_); (Aig.false_, Aig.false_) ])
    in
    let pick () =
      let l0, l1 = List.nth !pool (Random.State.int rand (List.length !pool)) in
      if Random.State.bool rand then (Aig.not_ l0, Aig.not_ l1) else (l0, l1)
    in
    for _ = 1 to 10 + Random.State.int rand 20 do
      let a0, a1 = pick () and b0, b1 = pick () in
      pool := (Aig.and_ g0 a0 b0, Aig.and_ g1 a1 b1) :: !pool
    done;
    let r0, r1 = List.hd !pool in
    for assignment = 0 to (1 lsl n_inputs) - 1 do
      let values = Array.init n_inputs (fun i -> assignment land (1 lsl i) <> 0) in
      Alcotest.(check bool)
        "rewrite preserves semantics" (Aig.eval g0 values r0) (Aig.eval g1 values r1)
    done;
    if Aig.num_ands g1 > Aig.num_ands g0 then Alcotest.fail "rewriting grew the graph"
  done

(* Compaction keeps the cone of the roots (semantics preserved through the
   returned literal map), drops dangling logic, and leaves the input
   numbering intact. *)
let test_compact () =
  let g = Aig.create () in
  let x = Aig.fresh_input g and y = Aig.fresh_input g and z = Aig.fresh_input g in
  let root = Aig.or_ g (Aig.and_ g x y) (Aig.and_ g x (Aig.not_ y)) in
  let dangling = Aig.and_ g y z in
  let h, map = Aig.compact g ~roots:[ root ] in
  Alcotest.(check int) "inputs preserved" (Aig.num_inputs g) (Aig.num_inputs h);
  let root' =
    match map root with Some l -> l | None -> Alcotest.fail "root not mapped"
  in
  for assignment = 0 to 7 do
    let values = Array.init 3 (fun i -> assignment land (1 lsl i) <> 0) in
    Alcotest.(check bool)
      "compact preserves semantics" (Aig.eval g values root) (Aig.eval h values root')
  done;
  Alcotest.(check (option int)) "dangling node unmapped" None (map dangling);
  (* The re-rewrite recognises (x & y) | (x & ~y) = x, so the compacted
     graph is strictly smaller here. *)
  Alcotest.(check bool) "compacted graph smaller" true (Aig.num_ands h < Aig.num_ands g)

(* ---- Plaisted-Greenbaum emission ---- *)

(* The PG emitter agrees with evaluation in both polarities (on-demand
   polarity upgrades included) and never emits more clauses than plain
   Tseitin would. *)
let test_pg_cnf_matches_eval () =
  let rand = Random.State.make [| 43 |] in
  for _trial = 1 to 50 do
    let n_inputs = 1 + Random.State.int rand 5 in
    let g, inputs, root = random_circuit rand n_inputs (5 + Random.State.int rand 20) in
    let solver = Sat.Solver.create () in
    let emitter = Aig.Cnf.make ~pg:true g solver in
    let input_sats = Array.map (Aig.Cnf.sat_lit emitter) inputs in
    for assignment = 0 to (1 lsl n_inputs) - 1 do
      let values = Array.init n_inputs (fun i -> assignment land (1 lsl i) <> 0) in
      let expected = Aig.eval g values root in
      let assumptions =
        Array.to_list
          (Array.mapi (fun i l -> if values.(i) then l else Sat.Lit.negate l) input_sats)
      in
      (* Ask for each direction through the emitter so the polarity the
         assumption needs is emitted before solving. *)
      let same =
        Aig.Cnf.sat_lit emitter (if expected then root else Aig.not_ root)
      in
      let flipped =
        Aig.Cnf.sat_lit emitter (if expected then Aig.not_ root else root)
      in
      if Sat.Solver.solve ~assumptions:(same :: assumptions) solver <> Sat.Solver.Sat
      then Alcotest.fail "PG CNF disagrees with eval (expected value unsat)";
      if Sat.Solver.solve ~assumptions:(flipped :: assumptions) solver <> Sat.Solver.Unsat
      then Alcotest.fail "PG CNF disagrees with eval (wrong value sat)"
    done;
    let st = Aig.Cnf.stats emitter in
    if st.Aig.Cnf.cnf_clauses > st.Aig.Cnf.cnf_clauses_plain then
      Alcotest.fail "PG emitted more clauses than plain Tseitin"
  done

(* A root used in one polarity only stays single-polarity: strictly fewer
   clauses than the plain encoding of the same cone. *)
let test_pg_single_polarity_savings () =
  let g = Aig.create () in
  let xs = List.init 6 (fun _ -> Aig.fresh_input g) in
  let root = Aig.and_list g (List.mapi (fun i x -> if i mod 2 = 0 then x else Aig.not_ x) xs) in
  let solver = Sat.Solver.create () in
  let emitter = Aig.Cnf.make ~pg:true g solver in
  ignore (Aig.Cnf.sat_lit emitter root);
  let st = Aig.Cnf.stats emitter in
  Alcotest.(check bool) "fewer clauses than plain" true
    (st.Aig.Cnf.cnf_clauses < st.Aig.Cnf.cnf_clauses_plain);
  Alcotest.(check bool) "single-polarity nodes counted" true (st.Aig.Cnf.cnf_single_pol > 0)

let test_eval_many_consistent () =
  let g = Aig.create () in
  let x = Aig.fresh_input g and y = Aig.fresh_input g in
  let roots = [ Aig.and_ g x y; Aig.or_ g x y; Aig.xor_ g x y ] in
  let inputs = [| true; false |] in
  Alcotest.(check (list bool))
    "eval_many = map eval" (List.map (Aig.eval g inputs) roots)
    (Aig.eval_many g inputs roots)

let suite =
  [
    ("aig.constants", `Quick, test_constants);
    ("aig.simplifications", `Quick, test_simplifications);
    ("aig.hash_consing", `Quick, test_hash_consing);
    ("aig.eval_gates", `Quick, test_eval_gates);
    ("aig.eval_ite", `Quick, test_eval_ite);
    ("aig.input_index", `Quick, test_input_index);
    ("aig.lists", `Quick, test_and_or_lists);
    ("aig.cnf_matches_eval", `Quick, test_cnf_matches_eval);
    ("aig.rewrite_rules", `Quick, test_rewrite_rules);
    ("aig.rewrite_eval_equiv", `Quick, test_rewrite_eval_equiv);
    ("aig.compact", `Quick, test_compact);
    ("aig.pg_cnf_matches_eval", `Quick, test_pg_cnf_matches_eval);
    ("aig.pg_single_polarity", `Quick, test_pg_single_polarity_savings);
    ("aig.eval_many", `Quick, test_eval_many_consistent);
  ]
