(* VCD writer tests: document structure, change-only emission, and witness
   rendering. *)

module Bv = Bitvec

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec loop i = i + nn <= hn && (String.sub haystack i nn = needle || loop (i + 1)) in
  nn = 0 || loop 0

let accum_trace () =
  let e = Designs.Registry.find "accum" in
  let tx x =
    Designs.Entry.operand_valuation e ~valid:true [ Bv.zero 1; Bv.make ~width:4 x ]
  in
  Rtl.simulate e.Designs.Entry.design [ tx 1; tx 2; tx 2 ]

let test_structure () =
  let doc = Vcd.of_trace ~design_name:"accum" (accum_trace ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains doc needle))
    [
      "$timescale";
      "$enddefinitions";
      "$scope module accum";
      "$scope module inputs";
      "$scope module state";
      "$scope module outputs";
      "$var wire 1";
      "$var wire 4";
      "#0";
      "#10";
      "#20";
    ]

let test_change_only_emission () =
  (* The x input repeats the value 2 on cycles 1 and 2: its change must be
     emitted once for that pair of cycles. *)
  let doc = Vcd.of_trace (accum_trace ()) in
  let id =
    let lines = String.split_on_char '\n' doc in
    List.find_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "$var"; "wire"; "4"; id; "x"; "$end" ] -> Some id
        | _ -> None)
      lines
    |> Option.get
  in
  let count =
    String.split_on_char '\n' doc
    |> List.filter (fun line -> line = Printf.sprintf "b0010 %s" id)
    |> List.length
  in
  Alcotest.(check int) "value 2 emitted once despite repeating" 1 count

let test_empty_trace () =
  let doc = Vcd.of_trace [] in
  Alcotest.(check bool) "valid header" true (contains doc "$enddefinitions")

let test_witness_rendering () =
  let e = Designs.Registry.find "accum" in
  let mutant =
    List.find_map
      (fun (m, d) ->
        if m.Mutation.operator = Mutation.Hidden_output then Some d else None)
      (Mutation.mutants e.Designs.Entry.design)
    |> Option.get
  in
  match
    (Qed.Checks.gqed mutant e.Designs.Entry.iface ~bound:6).Qed.Checks.verdict
  with
  | Qed.Checks.Fail f ->
      let doc = Vcd.of_witness ~design_name:"cex" f.Qed.Checks.witness in
      Alcotest.(check bool) "has the product's copy-1 signals" true
        (contains doc "dut1__acc");
      Alcotest.(check bool) "has the product's copy-2 signals" true
        (contains doc "dut2__acc")
  | Qed.Checks.Pass _ | Qed.Checks.Unknown _ -> Alcotest.fail "expected counterexample"

let test_to_file_roundtrip () =
  let doc = Vcd.of_trace (accum_trace ()) in
  let path = Filename.temp_file "gqed" ".vcd" in
  Vcd.to_file path doc;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" doc content

(* Semantic round trip: simulate, write VCD, re-parse with the minimal
   reader, and compare every signal of every cycle against the original
   trace. This catches writer bugs the substring checks above can't (wrong
   ids, missed changes, bad binary rendering). *)

let check_roundtrip design_name trace =
  let doc = Vcd.of_trace ~design_name trace in
  let parsed =
    match Vcd.Read.parse doc with
    | Ok t -> t
    | Error msg -> Alcotest.failf "reader rejected writer output: %s" msg
  in
  let check_group scope proj =
    List.iteri
      (fun cycle step ->
        Rtl.Smap.iter
          (fun name expected ->
            let signal =
              match Vcd.Read.find_signal parsed ~scope name with
              | Some s -> s
              | None -> Alcotest.failf "signal %s missing from scope %s" name scope
            in
            Alcotest.(check int)
              (Printf.sprintf "%s/%s width" scope name)
              (Bv.width expected) signal.Vcd.Read.width;
            (* Cycle k occupies time [10k, 10k+10); sample inside it. *)
            match Vcd.Read.value_at parsed signal ~time:((cycle * 10) + 5) with
            | None -> Alcotest.failf "%s/%s has no value at cycle %d" scope name cycle
            | Some got ->
                if not (Bv.equal got expected) then
                  Alcotest.failf "%s/%s cycle %d: wrote %s, read back %s" scope name
                    cycle (Bv.to_string expected) (Bv.to_string got))
          (proj step))
      trace
  in
  check_group "inputs" (fun (s : Rtl.trace_step) -> s.Rtl.t_inputs);
  check_group "state" (fun (s : Rtl.trace_step) -> s.Rtl.t_state);
  check_group "outputs" (fun (s : Rtl.trace_step) -> s.Rtl.t_outputs)

let test_read_roundtrip () = check_roundtrip "accum" (accum_trace ())

let test_read_roundtrip_all_designs () =
  (* Every benchmark design, driven with its own transaction generator, must
     survive the round trip — wider signals, multi-register state, repeated
     values (change-only emission) all included. *)
  List.iter
    (fun (e : Designs.Entry.t) ->
      let rand = Random.State.make [| 0xC0FFEE |] in
      let inputs =
        List.init 5 (fun _ ->
            if Random.State.float rand 1.0 < 0.2 then Designs.Entry.idle_valuation e
            else
              Designs.Entry.operand_valuation e ~valid:true
                (e.Designs.Entry.sample_operand rand))
      in
      check_roundtrip e.Designs.Entry.name
        (Rtl.simulate e.Designs.Entry.design inputs))
    Designs.Registry.all

let test_read_clk () =
  let doc = Vcd.of_trace ~design_name:"accum" (accum_trace ()) in
  let parsed = Result.get_ok (Vcd.Read.parse doc) in
  let clk = Option.get (Vcd.Read.find_signal parsed ~scope:"accum" "clk") in
  (* clk is 1 at the cycle start, 0 at the mid-cycle toggle. *)
  Alcotest.(check bool) "high at cycle start" true
    (Bv.to_bool (Option.get (Vcd.Read.value_at parsed clk ~time:10)));
  Alcotest.(check bool) "low mid-cycle" false
    (Bv.to_bool (Option.get (Vcd.Read.value_at parsed clk ~time:15)))

let test_read_rejects_garbage () =
  List.iter
    (fun doc ->
      match Vcd.Read.parse doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" doc)
    [
      "";
      "$scope module m $end\n";
      (* never closed, no enddefinitions *)
      "$enddefinitions $end\nb101\n";
      (* vector change without id *)
      "$enddefinitions $end\n1! \n#notanumber\n";
    ]

let suite =
  [
    ("vcd.structure", `Quick, test_structure);
    ("vcd.change_only", `Quick, test_change_only_emission);
    ("vcd.empty", `Quick, test_empty_trace);
    ("vcd.witness", `Quick, test_witness_rendering);
    ("vcd.to_file", `Quick, test_to_file_roundtrip);
    ("vcd.read_roundtrip", `Quick, test_read_roundtrip);
    ("vcd.read_roundtrip_all", `Quick, test_read_roundtrip_all_designs);
    ("vcd.read_clk", `Quick, test_read_clk);
    ("vcd.read_garbage", `Quick, test_read_rejects_garbage);
  ]
