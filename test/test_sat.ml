(* SAT solver tests: hand-written cases plus random-CNF cross-validation
   against a brute-force enumerator. *)

module Lit = Sat.Lit
module Solver = Sat.Solver
module Dimacs = Sat.Dimacs

let fresh_vars solver n = List.init n (fun _ -> Solver.new_var solver)

(* Brute-force satisfiability of a clause list over [n] variables. *)
let brute_force n clauses =
  let lit_true assignment l =
    let v = assignment land (1 lsl Lit.var l) <> 0 in
    if Lit.is_neg l then not v else v
  in
  let rec try_assignment a =
    if a >= 1 lsl n then false
    else if List.for_all (List.exists (lit_true a)) clauses then true
    else try_assignment (a + 1)
  in
  try_assignment 0

let check_model solver clauses =
  List.for_all (List.exists (Solver.value solver)) clauses

let test_trivial_sat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Lit.pos v ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "v true" true (Solver.value s (Lit.pos v))

let test_trivial_unsat () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Lit.pos v ];
  Solver.add_clause s [ Lit.neg v ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "not ok" false (Solver.ok s)

let test_empty_clause () =
  let s = Solver.create () in
  ignore (Solver.new_var s);
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_no_clauses () =
  let s = Solver.create () in
  ignore (fresh_vars s 3);
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

let test_unit_propagation_chain () =
  (* x1 and (x_i -> x_{i+1}) forces all true. *)
  let s = Solver.create () in
  let n = 50 in
  let vs = Array.of_list (fresh_vars s n) in
  Solver.add_clause s [ Lit.pos vs.(0) ];
  for i = 0 to n - 2 do
    Solver.add_clause s [ Lit.neg vs.(i); Lit.pos vs.(i + 1) ]
  done;
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Array.iter (fun v -> Alcotest.(check bool) "true" true (Solver.value s (Lit.pos v))) vs

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: classic small UNSAT with real conflict analysis. *)
  let s = Solver.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Solver.new_var s)) in
  for i = 0 to 2 do
    Solver.add_clause s [ Lit.pos p.(i).(0); Lit.pos p.(i).(1) ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Solver.add_clause s [ Lit.neg p.(i).(h); Lit.neg p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_pigeonhole_5_4 () =
  let s = Solver.create () in
  let np = 5 and nh = 4 in
  let p = Array.init np (fun _ -> Array.init nh (fun _ -> Solver.new_var s)) in
  for i = 0 to np - 1 do
    Solver.add_clause s (List.init nh (fun h -> Lit.pos p.(i).(h)))
  done;
  for h = 0 to nh - 1 do
    for i = 0 to np - 1 do
      for j = i + 1 to np - 1 do
        Solver.add_clause s [ Lit.neg p.(i).(h); Lit.neg p.(j).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_assumptions_flip () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos b ];
  Alcotest.(check bool) "sat under a=false" true
    (Solver.solve ~assumptions:[ Lit.neg a ] s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.value s (Lit.pos b));
  Alcotest.(check bool) "sat under b=false" true
    (Solver.solve ~assumptions:[ Lit.neg b ] s = Solver.Sat);
  Alcotest.(check bool) "a forced" true (Solver.value s (Lit.pos a));
  Alcotest.(check bool) "unsat under both false" true
    (Solver.solve ~assumptions:[ Lit.neg a; Lit.neg b ] s = Solver.Unsat);
  (* Solver must remain usable and satisfiable afterwards. *)
  Alcotest.(check bool) "still sat" true (Solver.solve s = Solver.Sat)

let test_unsat_core () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s and c = Solver.new_var s in
  Solver.add_clause s [ Lit.neg a; Lit.neg b ];
  (* c is irrelevant. *)
  let r = Solver.solve ~assumptions:[ Lit.pos a; Lit.pos b; Lit.pos c ] s in
  Alcotest.(check bool) "unsat" true (r = Solver.Unsat);
  let core = Solver.unsat_assumptions s in
  Alcotest.(check bool) "core nonempty" true (core <> []);
  Alcotest.(check bool) "core subset of assumptions" true
    (List.for_all (fun l -> List.mem l [ Lit.pos a; Lit.pos b; Lit.pos c ]) core);
  Alcotest.(check bool) "c not needed" true (not (List.mem (Lit.pos c) core));
  (* The core itself must be unsatisfiable. *)
  Alcotest.(check bool) "core unsat" true (Solver.solve ~assumptions:core s = Solver.Unsat)

let test_incremental_strengthening () =
  let s = Solver.create () in
  let vs = Array.of_list (fresh_vars s 4) in
  Solver.add_clause s (Array.to_list vs |> List.map Lit.pos);
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Solver.Sat);
  (* Force variables one at a time to false; stays SAT until all are. *)
  for i = 0 to 2 do
    Solver.add_clause s [ Lit.neg vs.(i) ];
    Alcotest.(check bool) "still sat" true (Solver.solve s = Solver.Sat)
  done;
  Solver.add_clause s [ Lit.neg vs.(3) ];
  Alcotest.(check bool) "finally unsat" true (Solver.solve s = Solver.Unsat)

let test_tautology_dropped () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.neg a ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  let st = Solver.stats s in
  Alcotest.(check int) "no clause stored" 0 st.Solver.clauses

let test_duplicate_literals () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.pos a; Lit.pos a; Lit.pos b; Lit.pos b ];
  Solver.add_clause s [ Lit.neg a ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "b true" true (Solver.value s (Lit.pos b))

(* Random CNF cross-validation. *)
let random_cnf_gen =
  let open QCheck.Gen in
  int_range 1 10 >>= fun n ->
  int_range 0 45 >>= fun m ->
  let clause =
    int_range 1 3 >>= fun len ->
    list_size (return len)
      (int_range 0 (n - 1) >>= fun v ->
       bool >>= fun neg -> return (Lit.make v ~neg))
  in
  list_size (return m) clause >>= fun clauses -> return (n, clauses)

let print_cnf (n, clauses) =
  Printf.sprintf "vars=%d clauses=[%s]" n
    (String.concat "; "
       (List.map
          (fun c -> String.concat "," (List.map (fun l -> string_of_int (Lit.to_dimacs l)) c))
          clauses))

let prop_matches_brute_force =
  QCheck.Test.make ~count:500 ~name:"solver agrees with brute force"
    (QCheck.make ~print:print_cnf random_cnf_gen)
    (fun (n, clauses) ->
      let s = Solver.create () in
      ignore (fresh_vars s n);
      List.iter (Solver.add_clause s) clauses;
      let expected = brute_force n clauses in
      match Solver.solve s with
      | Solver.Sat -> expected && check_model s clauses
      | Solver.Unsat -> not expected
      | Solver.Unknown _ -> false)

let prop_assumptions_match_brute_force =
  QCheck.Test.make ~count:300 ~name:"solve-under-assumptions agrees with brute force"
    (QCheck.make
       ~print:(fun (c, asms) -> print_cnf c ^ " asms=" ^ print_cnf (0, [ asms ]))
       QCheck.Gen.(
         random_cnf_gen >>= fun (n, clauses) ->
         let lit = int_range 0 (n - 1) >>= fun v -> bool >>= fun neg -> return (Lit.make v ~neg) in
         list_size (int_range 0 3) lit >>= fun asms -> return ((n, clauses), asms)))
    (fun ((n, clauses), assumptions) ->
      let s = Solver.create () in
      ignore (fresh_vars s n);
      List.iter (Solver.add_clause s) clauses;
      let expected = brute_force n (clauses @ List.map (fun l -> [ l ]) assumptions) in
      match Solver.solve ~assumptions s with
      | Solver.Sat ->
          expected && check_model s clauses
          && List.for_all (Solver.value s) assumptions
      | Solver.Unsat -> not expected
      | Solver.Unknown _ -> false)

let prop_incremental_consistency =
  (* Solving twice in a row gives the same answer; adding a model-blocking
     clause to a SAT instance keeps the solver usable. *)
  QCheck.Test.make ~count:200 ~name:"repeat solve is stable"
    (QCheck.make ~print:print_cnf random_cnf_gen)
    (fun (n, clauses) ->
      let s = Solver.create () in
      ignore (fresh_vars s n);
      List.iter (Solver.add_clause s) clauses;
      let r1 = Solver.solve s in
      let r2 = Solver.solve s in
      r1 = r2)

(* DIMACS *)
let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  match Dimacs.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok cnf ->
      Alcotest.(check int) "vars" 3 cnf.Dimacs.num_vars;
      Alcotest.(check int) "clauses" 2 (List.length cnf.Dimacs.clauses);
      let text' = Dimacs.to_string cnf in
      (match Dimacs.parse_string text' with
      | Error e -> Alcotest.fail e
      | Ok cnf' -> Alcotest.(check bool) "roundtrip" true (cnf = cnf'))

let test_dimacs_errors () =
  let is_error t = match Dimacs.parse_string t with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "no header" true (is_error "1 2 0\n");
  Alcotest.(check bool) "unterminated" true (is_error "p cnf 2 1\n1 2\n");
  Alcotest.(check bool) "out of range" true (is_error "p cnf 1 1\n2 0\n");
  Alcotest.(check bool) "wrong count" true (is_error "p cnf 2 2\n1 0\n")

let test_dimacs_solve () =
  match Dimacs.solve_string "p cnf 2 2\n1 0\n-1 2 0\n" with
  | Error e -> Alcotest.fail e
  | Ok (result, model) ->
      Alcotest.(check bool) "sat" true (result = Solver.Sat);
      (match model with
      | None -> Alcotest.fail "expected model"
      | Some m ->
          Alcotest.(check bool) "x1" true m.(0);
          Alcotest.(check bool) "x2" true m.(1))

let test_dimacs_multiline_clause () =
  match Dimacs.parse_string "p cnf 3 1\n1\n2\n3 0\n" with
  | Error e -> Alcotest.fail e
  | Ok cnf -> Alcotest.(check int) "one clause" 1 (List.length cnf.Dimacs.clauses)

(* Seeded DIMACS fuzz, now shared with the `gqed fuzz` harness: ≥500 random
   instances with up to 20 variables, fed through the DIMACS text pipeline,
   cross-checked against an exhaustive enumerator — and with a DRAT
   certificate demanded (and independently checked) for every UNSAT verdict.
   The clause-length distribution is biased toward binary clauses so the
   specialised binary implication lists, watcher blockers and LBD-based
   learnt reduction all see real traffic. *)

let test_dimacs_fuzz_20vars () =
  Alcotest.(check (list (pair int string)))
    "all instances agree and certify" []
    (Fuzz.dimacs ~max_vars:20 ~seed:0xD1CA5 ~count:500 ~cert:true ())

let prop_exhaustive_matches_brute_force =
  (* Keep the fuzz harness's reference enumerator honest: the pruned
     backtracking search must agree with naive full enumeration. *)
  QCheck.Test.make ~count:300 ~name:"fuzz enumerator agrees with brute force"
    (QCheck.make ~print:print_cnf random_cnf_gen)
    (fun (n, clauses) -> Fuzz.exhaustive_sat n clauses = brute_force n clauses)

let test_contradictory_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  (* No clauses at all: the contradiction lives in the assumptions. *)
  let r = Solver.solve ~assumptions:[ Lit.pos a; Lit.neg a ] s in
  Alcotest.(check bool) "unsat" true (r = Solver.Unsat);
  Alcotest.(check bool) "still ok" true (Solver.ok s);
  Alcotest.(check bool) "sat afterwards" true (Solver.solve s = Solver.Sat)

let test_duplicate_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Lit.neg a; Lit.pos b ];
  let r = Solver.solve ~assumptions:[ Lit.pos a; Lit.pos a; Lit.pos a ] s in
  Alcotest.(check bool) "sat" true (r = Solver.Sat);
  Alcotest.(check bool) "b implied" true (Solver.value s (Lit.pos b))

let test_many_vars_no_clauses () =
  let s = Solver.create () in
  ignore (fresh_vars s 2000);
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check int) "model covers all" 2000 (Array.length (Solver.model s))

let test_value_before_solve_raises () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  Alcotest.(check bool) "raises" true
    (match Solver.value s (Lit.pos a) with exception Failure _ -> true | _ -> false)

let test_stats_monotone () =
  let s = Solver.create () in
  let vs = Array.of_list (fresh_vars s 6) in
  (* A small unsatisfiable XOR-ish cluster to force real conflicts. *)
  for i = 0 to 4 do
    Solver.add_clause s [ Lit.pos vs.(i); Lit.pos vs.(i + 1) ];
    Solver.add_clause s [ Lit.neg vs.(i); Lit.neg vs.(i + 1) ]
  done;
  ignore (Solver.solve s);
  let st1 = Solver.stats s in
  ignore (Solver.solve s);
  let st2 = Solver.stats s in
  Alcotest.(check bool) "propagations monotone" true
    (st2.Solver.propagations >= st1.Solver.propagations);
  Alcotest.(check int) "vars stable" st1.Solver.vars st2.Solver.vars

let test_lit_encoding () =
  Alcotest.(check int) "pos var" 3 (Lit.var (Lit.pos 3));
  Alcotest.(check bool) "pos sign" false (Lit.is_neg (Lit.pos 3));
  Alcotest.(check bool) "neg sign" true (Lit.is_neg (Lit.neg 3));
  Alcotest.(check int) "negate involutive" (Lit.pos 7) (Lit.negate (Lit.negate (Lit.pos 7)));
  Alcotest.(check int) "dimacs pos" 4 (Lit.to_dimacs (Lit.pos 3));
  Alcotest.(check int) "dimacs neg" (-4) (Lit.to_dimacs (Lit.neg 3));
  Alcotest.(check int) "dimacs roundtrip" (Lit.neg 9) (Lit.of_dimacs (Lit.to_dimacs (Lit.neg 9)))

(* ---- CNF preprocessing (Simplify + Solver.preprocess) ---- *)

module Simplify = Sat.Simplify

let no_flags n = Array.make n false

let test_simplify_subsumption () =
  let x = Lit.pos 0 and y = Lit.pos 1 and z = Lit.pos 2 in
  let clauses = [| [| x; y |]; [| x; y; z |] |] in
  let actions, stats =
    Simplify.run ~nvars:3 ~frozen:(no_flags 3) ~protected:(no_flags 2) clauses
  in
  Alcotest.(check int) "one clause subsumed" 1 stats.Simplify.s_subsumed;
  Alcotest.(check bool) "the superset clause was removed" true
    (List.exists (function Simplify.Remove 1 -> true | _ -> false) actions)

let test_simplify_self_subsume () =
  let a = Lit.pos 0 and b = Lit.pos 1 and c = Lit.pos 2 in
  (* Resolving on c: (a|b|c) x (a|b|~c) -> (a|b), which strengthens both. *)
  let clauses = [| [| a; b; c |]; [| a; b; Lit.negate c |] |] in
  let _, stats =
    Simplify.run ~nvars:3 ~frozen:(no_flags 3) ~protected:(no_flags 2) clauses
  in
  Alcotest.(check bool) "strengthening happened" true (stats.Simplify.s_strengthened >= 1)

let test_simplify_bve_extend_model () =
  (* x <-> y & z, Tseitin-style. All three variables are eliminable (in
     some order); whatever the eliminator picked, model extension must
     repair an arbitrary assignment into one satisfying the original
     clauses. *)
  let x = Lit.pos 0 and y = Lit.pos 1 and z = Lit.pos 2 in
  let clauses =
    [|
      [| Lit.negate x; y |];
      [| Lit.negate x; z |];
      [| x; Lit.negate y; Lit.negate z |];
    |]
  in
  let config = { Simplify.default_config with Simplify.bve = true } in
  let actions, stats =
    Simplify.run ~config ~nvars:3 ~frozen:(no_flags 3) ~protected:(no_flags 3) clauses
  in
  Alcotest.(check bool) "something eliminated" true (stats.Simplify.s_eliminated >= 1);
  (* Reverse elimination order, as the solver's elim stack accumulates. *)
  let stack =
    List.fold_left
      (fun acc -> function Simplify.Eliminate (v, cls) -> (v, cls) :: acc | _ -> acc)
      [] actions
  in
  let lit_true model l =
    let v = model.(Lit.var l) in
    if Lit.is_neg l then not v else v
  in
  for init = 0 to 7 do
    let model = Array.init 3 (fun i -> init land (1 lsl i) <> 0) in
    Simplify.extend_model stack model;
    Array.iter
      (fun cl ->
        if not (Array.exists (lit_true model) cl) then
          Alcotest.failf "extended model violates a clause (init %d)" init)
      clauses
  done

let random_instance rand nvars nclauses =
  List.init nclauses (fun _ ->
      let len = 1 + Random.State.int rand 3 in
      List.init len (fun _ ->
          Lit.make (Random.State.int rand nvars) ~neg:(Random.State.bool rand)))

(* Preprocessing (with elimination) never changes the verdict, and SAT
   models — after reconstruction of eliminated variables — still satisfy
   every original clause. *)
let test_preprocess_matches_plain () =
  let rand = Random.State.make [| 2025 |] in
  for _trial = 1 to 200 do
    let nvars = 3 + Random.State.int rand 6 in
    let clauses = random_instance rand nvars (2 + Random.State.int rand 20) in
    let expected = brute_force nvars clauses in
    let s = Solver.create () in
    let _ = fresh_vars s nvars in
    List.iter (Solver.add_clause s) clauses;
    let _ = Solver.preprocess ~elim:true s in
    match Solver.solve s with
    | Solver.Sat ->
        if not expected then Alcotest.fail "preprocessed solver said SAT, brute force UNSAT";
        if not (check_model s clauses) then
          Alcotest.fail "model does not satisfy the original clauses"
    | Solver.Unsat ->
        if expected then Alcotest.fail "preprocessed solver said UNSAT, brute force SAT"
    | Solver.Unknown _ -> Alcotest.fail "unexpected unknown without a budget"
  done

(* Same, but incrementally: preprocess between clause batches and solve
   under assumptions. Only the equivalence-preserving reductions run here
   (no elimination), so later batches are safe. *)
let test_preprocess_incremental () =
  let rand = Random.State.make [| 2026 |] in
  for _trial = 1 to 200 do
    let nvars = 3 + Random.State.int rand 5 in
    let batch1 = random_instance rand nvars (2 + Random.State.int rand 10) in
    let batch2 = random_instance rand nvars (2 + Random.State.int rand 10) in
    let assumption = Lit.make (Random.State.int rand nvars) ~neg:(Random.State.bool rand) in
    let s = Solver.create () in
    let _ = fresh_vars s nvars in
    List.iter (Solver.add_clause s) batch1;
    let _ = Solver.preprocess s in
    List.iter (Solver.add_clause s) batch2;
    let _ = Solver.preprocess s in
    let expected = brute_force nvars ([ assumption ] :: batch1 @ batch2) in
    match Solver.solve ~assumptions:[ assumption ] s with
    | Solver.Sat ->
        if not expected then Alcotest.fail "incremental preprocess: SAT vs brute UNSAT";
        if not (check_model s (batch1 @ batch2)) then
          Alcotest.fail "incremental preprocess: bad model"
    | Solver.Unsat ->
        if expected then Alcotest.fail "incremental preprocess: UNSAT vs brute SAT"
    | Solver.Unknown _ -> Alcotest.fail "unexpected unknown without a budget"
  done

(* Assumption variables passed as [frozen] survive bounded variable
   elimination, and the extended model of a SAT answer under those
   assumptions honours both the assumptions and every original clause —
   including clauses whose other variables were resolved away. *)
let test_preprocess_elim_frozen_assumptions () =
  let rand = Random.State.make [| 2027 |] in
  for _trial = 1 to 200 do
    let nvars = 3 + Random.State.int rand 6 in
    let clauses = random_instance rand nvars (2 + Random.State.int rand 15) in
    let a = Lit.make (Random.State.int rand nvars) ~neg:(Random.State.bool rand) in
    let expected = brute_force nvars ([ a ] :: clauses) in
    let s = Solver.create () in
    let _ = fresh_vars s nvars in
    List.iter (Solver.add_clause s) clauses;
    let _ = Solver.preprocess ~elim:true ~frozen:[ a ] s in
    match Solver.solve ~assumptions:[ a ] s with
    | Solver.Sat ->
        if not expected then
          Alcotest.fail "elim+frozen solver said SAT, brute force UNSAT";
        if not (Solver.value s a) then
          Alcotest.fail "model does not honour the frozen assumption";
        if not (check_model s clauses) then
          Alcotest.fail "extended model violates an original clause"
    | Solver.Unsat ->
        if expected then Alcotest.fail "elim+frozen solver said UNSAT, brute force SAT"
    | Solver.Unknown _ -> Alcotest.fail "unexpected unknown without a budget"
  done

(* Targeted shape: x <-> y & z with only x frozen, so the eliminator is
   free to resolve y and z away. Assuming x afterwards must reconstruct
   y = z = true in the extended model. *)
let test_preprocess_elim_assumption_pulls_definition () =
  let s = Solver.create () in
  let x = Lit.pos (Solver.new_var s) in
  let y = Lit.pos (Solver.new_var s) in
  let z = Lit.pos (Solver.new_var s) in
  Solver.add_clause s [ Lit.negate x; y ];
  Solver.add_clause s [ Lit.negate x; z ];
  Solver.add_clause s [ x; Lit.negate y; Lit.negate z ];
  let _ = Solver.preprocess ~elim:true ~frozen:[ x ] s in
  match Solver.solve ~assumptions:[ x ] s with
  | Solver.Sat ->
      Alcotest.(check bool) "x true" true (Solver.value s x);
      Alcotest.(check bool) "y reconstructed true" true (Solver.value s y);
      Alcotest.(check bool) "z reconstructed true" true (Solver.value s z)
  | Solver.Unsat | Solver.Unknown _ -> Alcotest.fail "satisfiable instance rejected"

(* Every preprocessing step is DRAT-logged: UNSAT verdicts after
   elimination still carry a certificate the independent checker accepts. *)
let test_preprocess_drat_certified () =
  let rand = Random.State.make [| 2027 |] in
  let certified = ref 0 in
  for _trial = 1 to 100 do
    let nvars = 3 + Random.State.int rand 4 in
    (* Dense instances so a good fraction are UNSAT. *)
    let clauses = random_instance rand nvars (8 + Random.State.int rand 25) in
    let s = Solver.create () in
    Solver.start_proof s;
    let _ = fresh_vars s nvars in
    List.iter (Solver.add_clause s) clauses;
    let _ = Solver.preprocess ~elim:true s in
    match Solver.solve s with
    | Solver.Sat ->
        if not (check_model s clauses) then Alcotest.fail "SAT model broken under proof"
    | Solver.Unsat -> begin
        match Sat.Drat.check (Solver.proof s) with
        | Ok () -> incr certified
        | Error msg -> Alcotest.failf "DRAT certificate rejected: %s" msg
      end
    | Solver.Unknown _ -> Alcotest.fail "unexpected unknown without a budget"
  done;
  Alcotest.(check bool) "some UNSAT instances were certified" true (!certified > 0)

(* ------------------------------------------------------------------ *)
(* Resource governance: budgets, cancellation, fault injection, reuse.  *)

(* Pigeonhole np/nh: UNSAT for np > nh, with enough real search that every
   budget kind gets a chance to fire before the verdict. *)
let pigeonhole np nh =
  let s = Solver.create () in
  let p = Array.init np (fun _ -> Array.init nh (fun _ -> Solver.new_var s)) in
  for i = 0 to np - 1 do
    Solver.add_clause s (List.init nh (fun h -> Lit.pos p.(i).(h)))
  done;
  for h = 0 to nh - 1 do
    for i = 0 to np - 1 do
      for j = i + 1 to np - 1 do
        Solver.add_clause s [ Lit.neg p.(i).(h); Lit.neg p.(j).(h) ]
      done
    done
  done;
  s

let expect_unknown name expected = function
  | Solver.Unknown r ->
      Alcotest.(check string) name
        (Solver.reason_to_string expected)
        (Solver.reason_to_string r)
  | Solver.Sat | Solver.Unsat -> Alcotest.failf "%s: budget did not fire" name

let test_budget_conflicts_fires () =
  expect_unknown "conflicts" Solver.Out_of_conflicts
    (Solver.solve ~budget:(Solver.budget ~conflicts:1 ()) (pigeonhole 6 5))

let test_budget_decisions_fires () =
  expect_unknown "decisions" Solver.Out_of_decisions
    (Solver.solve ~budget:(Solver.budget ~decisions:1 ()) (pigeonhole 6 5))

let test_budget_propagations_fires () =
  expect_unknown "propagations" Solver.Out_of_propagations
    (Solver.solve ~budget:(Solver.budget ~propagations:1 ()) (pigeonhole 6 5))

let test_budget_seconds_fires () =
  expect_unknown "seconds" Solver.Out_of_time
    (Solver.solve ~budget:(Solver.budget ~seconds:1e-9 ()) (pigeonhole 6 5))

let test_budget_learnt_mb_fires () =
  expect_unknown "learnt_mb" Solver.Out_of_memory_budget
    (Solver.solve ~budget:(Solver.budget ~learnt_mb:1e-9 ()) (pigeonhole 6 5))

let test_cancel_token_fires () =
  let token = Solver.cancel_token () in
  Solver.cancel token;
  expect_unknown "cancel" Solver.Cancelled (Solver.solve ~cancel:token (pigeonhole 6 5))

let test_fault_hook_fires () =
  let s = pigeonhole 5 4 in
  Solver.set_fault_hook s (Some (fun _ -> Some Solver.Fault_cancel));
  expect_unknown "fault" Solver.Cancelled (Solver.solve s);
  (* Clearing the hook restores normal operation on the same solver. *)
  Solver.set_fault_hook s None;
  Alcotest.(check bool) "unsat after clearing hook" true (Solver.solve s = Solver.Unsat)

let test_reusable_after_unknown () =
  (* An Unknown answer must leave the solver resumable: a follow-up call
     with a bigger (or absent) budget reaches the real verdict. *)
  let s = pigeonhole 6 5 in
  (match Solver.solve ~budget:(Solver.budget ~conflicts:1 ()) s with
  | Solver.Unknown _ -> ()
  | Solver.Sat | Solver.Unsat -> Alcotest.fail "expected unknown on the starved call");
  Alcotest.(check bool) "unsat on resume" true (Solver.solve s = Solver.Unsat);
  (* And a SAT instance still produces a usable model after an Unknown.
     An implication chain with no unit clause forces at least one decision,
     so the cancelled search loop is guaranteed to be entered. *)
  let s = Solver.create () in
  let vs = Array.init 30 (fun _ -> Solver.new_var s) in
  for i = 0 to 28 do
    Solver.add_clause s [ Lit.neg vs.(i); Lit.pos vs.(i + 1) ]
  done;
  let token = Solver.cancel_token () in
  Solver.cancel token;
  (match Solver.solve ~cancel:token s with
  | Solver.Unknown _ -> ()
  | Solver.Sat | Solver.Unsat -> Alcotest.fail "expected cancellation");
  Alcotest.(check bool) "sat on resume" true (Solver.solve s = Solver.Sat);
  for i = 0 to 28 do
    Alcotest.(check bool) "model respects implication" true
      ((not (Solver.value s (Lit.pos vs.(i)))) || Solver.value s (Lit.pos vs.(i + 1)))
  done

let test_budget_scale () =
  let b = Solver.budget_scale (Solver.budget ~conflicts:10 ~seconds:2.0 ()) 4.0 in
  Alcotest.(check (option int)) "conflicts scaled" (Some 40) b.Solver.max_conflicts;
  (match b.Solver.max_seconds with
  | Some s -> Alcotest.(check bool) "seconds scaled" true (abs_float (s -. 8.0) < 1e-9)
  | None -> Alcotest.fail "seconds dropped");
  Alcotest.(check (option int)) "absent stays absent" None b.Solver.max_decisions

let test_seed_preserves_verdict () =
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d" seed)
        true
        (Solver.solve ~seed (pigeonhole 5 4) = Solver.Unsat))
    [ 0; 1; 42; 1337 ]

(* ------------------------------------------------------------------ *)
(* Clause-sharing portfolio.                                            *)

module Portfolio = Sat.Portfolio

(* Like [pigeonhole] but with DRAT logging on from the start, so the
   merged portfolio certificate includes the Input events. *)
let pigeonhole_logged np nh =
  let s = Solver.create () in
  Solver.start_proof s;
  let p = Array.init np (fun _ -> Array.init nh (fun _ -> Solver.new_var s)) in
  for i = 0 to np - 1 do
    Solver.add_clause s (List.init nh (fun h -> Lit.pos p.(i).(h)))
  done;
  for h = 0 to nh - 1 do
    for i = 0 to np - 1 do
      for j = i + 1 to np - 1 do
        Solver.add_clause s [ Lit.neg p.(i).(h); Lit.neg p.(j).(h) ]
      done
    done
  done;
  s

let test_ring_overflow_drop () =
  let r = Portfolio.Ring.create 4 in
  Alcotest.(check int) "capacity" 4 (Portfolio.Ring.capacity r);
  for i = 1 to 6 do
    Alcotest.(check bool)
      (Printf.sprintf "push %d" i)
      (i <= 4)
      (Portfolio.Ring.push r [| Lit.pos i |])
  done;
  Alcotest.(check int) "two dropped on full" 2 (Portfolio.Ring.dropped r);
  for i = 1 to 4 do
    match Portfolio.Ring.pop r with
    | Some c ->
        Alcotest.(check bool) (Printf.sprintf "fifo order %d" i) true (c = [| Lit.pos i |])
    | None -> Alcotest.fail "ring drained too early"
  done;
  Alcotest.(check bool) "empty after drain" true (Portfolio.Ring.pop r = None);
  (* The consumer's head advance licenses slot reuse by the producer. *)
  Alcotest.(check bool) "reusable after drain" true
    (Portfolio.Ring.push r [| Lit.pos 9 |]);
  Alcotest.(check int) "dropped unchanged" 2 (Portfolio.Ring.dropped r)

let test_portfolio_unsat_matches_single () =
  (* Same verdict as the single-solver lane, and every non-winning worker
     either lost the race (Cancelled) or independently agreed — a losing
     worker must never decide the opposite verdict. *)
  let o =
    Portfolio.solve ~config:(Portfolio.config ~workers:3 ()) (pigeonhole 5 4)
  in
  Alcotest.(check bool) "unsat" true (o.Portfolio.o_result = Solver.Unsat);
  Alcotest.(check bool) "winner decided" true (o.Portfolio.o_winner >= 0);
  List.iter
    (fun (i, r, _) ->
      match r with
      | Solver.Unsat | Solver.Unknown Solver.Cancelled -> ()
      | Solver.Sat -> Alcotest.failf "worker %d flipped to Sat" i
      | Solver.Unknown reason ->
          Alcotest.failf "worker %d: unexpected %s" i (Solver.reason_to_string reason))
    o.Portfolio.o_reports

let test_portfolio_unsat_certified () =
  let s = pigeonhole_logged 5 4 in
  let o = Portfolio.solve ~config:(Portfolio.config ~workers:3 ()) s in
  Alcotest.(check bool) "unsat" true (o.Portfolio.o_result = Solver.Unsat);
  match Sat.Drat.check (Solver.proof s @ o.Portfolio.o_derived) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "merged certificate rejected: %s" m

let test_portfolio_sat_injects_model () =
  let s = Solver.create () in
  let vs = Array.of_list (fresh_vars s 8) in
  let clauses = ref [] in
  for i = 0 to 6 do
    clauses := [ Lit.neg vs.(i); Lit.pos vs.(i + 1) ] :: !clauses
  done;
  clauses := [ Lit.pos vs.(0) ] :: !clauses;
  List.iter (Solver.add_clause s) !clauses;
  let o = Portfolio.solve ~config:(Portfolio.config ~workers:3 ()) s in
  Alcotest.(check bool) "sat" true (o.Portfolio.o_result = Solver.Sat);
  (* The winning model is injected into the master: [Solver.value] answers
     for the master as if it had solved the query itself. *)
  Alcotest.(check bool) "master model satisfies clauses" true (check_model s !clauses)

let test_portfolio_no_share_counters_zero () =
  let o =
    Portfolio.solve
      ~config:(Portfolio.config ~workers:2 ~share:false ())
      (pigeonhole 5 4)
  in
  Alcotest.(check bool) "unsat" true (o.Portfolio.o_result = Solver.Unsat);
  Alcotest.(check int) "nothing exported" 0 o.Portfolio.o_exported;
  Alcotest.(check int) "nothing imported" 0 o.Portfolio.o_imported;
  Alcotest.(check int) "nothing dropped" 0 o.Portfolio.o_dropped

let test_portfolio_deterministic_reproducible () =
  (* Deterministic mode: sharing off, every worker runs to completion,
     winner = lowest decided index. Two runs on equal masters must agree
     on the winner, the verdict and every worker's full counter set. *)
  let run () =
    Portfolio.solve ~seed:42
      ~config:(Portfolio.config ~workers:3 ~deterministic:true ())
      (pigeonhole 5 4)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "verdict" true (a.Portfolio.o_result = b.Portfolio.o_result);
  Alcotest.(check int) "winner" a.Portfolio.o_winner b.Portfolio.o_winner;
  Alcotest.(check int) "report count" (List.length a.Portfolio.o_reports)
    (List.length b.Portfolio.o_reports);
  List.iter2
    (fun (ia, ra, sta) (ib, rb, stb) ->
      Alcotest.(check int) "worker index" ia ib;
      Alcotest.(check bool) (Printf.sprintf "worker %d result" ia) true (ra = rb);
      Alcotest.(check bool) (Printf.sprintf "worker %d stats" ia) true (sta = stb))
    a.Portfolio.o_reports b.Portfolio.o_reports

let test_portfolio_cancel_all () =
  let token = Solver.cancel_token () in
  Solver.cancel token;
  let o =
    Portfolio.solve ~cancel:token
      ~config:(Portfolio.config ~workers:2 ())
      (pigeonhole 6 5)
  in
  (match o.Portfolio.o_result with
  | Solver.Unknown Solver.Cancelled -> ()
  | r ->
      Alcotest.failf "expected Unknown Cancelled, got %s"
        (match r with
        | Solver.Sat -> "Sat"
        | Solver.Unsat -> "Unsat"
        | Solver.Unknown reason -> "Unknown " ^ Solver.reason_to_string reason));
  Alcotest.(check int) "no winner" (-1) o.Portfolio.o_winner

let test_portfolio_one_worker_is_plain () =
  (* p_workers = 1 solves on the master itself: identical verdict and
     stats to a direct [Solver.solve] call on an equal solver. *)
  let direct = pigeonhole 5 4 in
  let r_direct = Solver.solve ~seed:7 direct in
  let o =
    Portfolio.solve ~seed:7 ~config:(Portfolio.config ~workers:1 ()) (pigeonhole 5 4)
  in
  Alcotest.(check bool) "same verdict" true (o.Portfolio.o_result = r_direct);
  Alcotest.(check bool) "same stats" true (o.Portfolio.o_stats = Solver.stats direct)

let suite =
  let q = QCheck_alcotest.to_alcotest in
  [
    ("sat.trivial_sat", `Quick, test_trivial_sat);
    ("sat.trivial_unsat", `Quick, test_trivial_unsat);
    ("sat.empty_clause", `Quick, test_empty_clause);
    ("sat.no_clauses", `Quick, test_no_clauses);
    ("sat.unit_chain", `Quick, test_unit_propagation_chain);
    ("sat.pigeonhole_3_2", `Quick, test_pigeonhole_3_2);
    ("sat.pigeonhole_5_4", `Quick, test_pigeonhole_5_4);
    ("sat.assumptions", `Quick, test_assumptions_flip);
    ("sat.unsat_core", `Quick, test_unsat_core);
    ("sat.incremental", `Quick, test_incremental_strengthening);
    ("sat.tautology", `Quick, test_tautology_dropped);
    ("sat.duplicates", `Quick, test_duplicate_literals);
    ("sat.contradictory_assumptions", `Quick, test_contradictory_assumptions);
    ("sat.duplicate_assumptions", `Quick, test_duplicate_assumptions);
    ("sat.many_vars", `Quick, test_many_vars_no_clauses);
    ("sat.value_before_solve", `Quick, test_value_before_solve_raises);
    ("sat.stats_monotone", `Quick, test_stats_monotone);
    ("sat.lit_encoding", `Quick, test_lit_encoding);
    ("dimacs.roundtrip", `Quick, test_dimacs_roundtrip);
    ("dimacs.errors", `Quick, test_dimacs_errors);
    ("dimacs.solve", `Quick, test_dimacs_solve);
    ("dimacs.multiline", `Quick, test_dimacs_multiline_clause);
    ("dimacs.fuzz_20vars", `Quick, test_dimacs_fuzz_20vars);
    ("simplify.subsumption", `Quick, test_simplify_subsumption);
    ("simplify.self_subsume", `Quick, test_simplify_self_subsume);
    ("simplify.bve_extend_model", `Quick, test_simplify_bve_extend_model);
    ("simplify.preprocess_matches_plain", `Quick, test_preprocess_matches_plain);
    ("simplify.preprocess_incremental", `Quick, test_preprocess_incremental);
    ("simplify.preprocess_drat", `Quick, test_preprocess_drat_certified);
    ( "simplify.elim_frozen_assumptions",
      `Quick,
      test_preprocess_elim_frozen_assumptions );
    ( "simplify.elim_assumption_definition",
      `Quick,
      test_preprocess_elim_assumption_pulls_definition );
    ("govern.conflicts", `Quick, test_budget_conflicts_fires);
    ("govern.decisions", `Quick, test_budget_decisions_fires);
    ("govern.propagations", `Quick, test_budget_propagations_fires);
    ("govern.seconds", `Quick, test_budget_seconds_fires);
    ("govern.learnt_mb", `Quick, test_budget_learnt_mb_fires);
    ("govern.cancel", `Quick, test_cancel_token_fires);
    ("govern.fault_hook", `Quick, test_fault_hook_fires);
    ("govern.reuse_after_unknown", `Quick, test_reusable_after_unknown);
    ("govern.budget_scale", `Quick, test_budget_scale);
    ("govern.seed_verdict", `Quick, test_seed_preserves_verdict);
    ("portfolio.ring_overflow", `Quick, test_ring_overflow_drop);
    ("portfolio.unsat_matches_single", `Quick, test_portfolio_unsat_matches_single);
    ("portfolio.unsat_certified", `Quick, test_portfolio_unsat_certified);
    ("portfolio.sat_injects_model", `Quick, test_portfolio_sat_injects_model);
    ("portfolio.no_share_counters", `Quick, test_portfolio_no_share_counters_zero);
    ("portfolio.deterministic", `Quick, test_portfolio_deterministic_reproducible);
    ("portfolio.cancel_all", `Quick, test_portfolio_cancel_all);
    ("portfolio.one_worker_plain", `Quick, test_portfolio_one_worker_is_plain);
    q prop_matches_brute_force;
    q prop_assumptions_match_brute_force;
    q prop_incremental_consistency;
    q prop_exhaustive_matches_brute_force;
  ]
