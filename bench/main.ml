(* Experiment harness: regenerates every table and figure of the
   (reconstructed) evaluation — see DESIGN.md section 4 and EXPERIMENTS.md
   for the experiment index and the mapping to the paper's claims.

   Usage:
     dune exec bench/main.exe                       # all experiments
     dune exec bench/main.exe -- t2 f1              # a subset, by id
     dune exec bench/main.exe -- --jobs 4 t2        # fan tasks over 4 domains
     dune exec bench/main.exe -- --json BENCH.json  # machine-readable timings

   Experiment ids: t1 t2 t3 t4 t5 a1 a2 a3 s1 f1 f2 f3 rob p1 c1 r2 dist obs
   micro.

   --checkpoint FILE journals every check's verdict to a crash-safe
   write-ahead log as the run progresses; --resume replays an existing
   journal and skips the decided tasks, reproducing the uninterrupted
   verdict matrix bit-for-bit (journaled Unknown verdicts are always
   re-attempted). A fresh run refuses an existing journal unless --force;
   --resume without a journal is an error. Timing figures of a resumed
   run are not comparable to a cold one (skipped cells cost ~0), but no
   verdict or table cell ever changes. The r2 experiment exercises the
   same machinery in-process: journaled run, killed at a random record,
   resumed, diffed — plus injected journal I/O faults and supervised
   worker restarts; any flip exits 1. --seed N varies which kill point
   the r2 crash simulation picks (verdicts are seed-independent).

   --trace FILE / --metrics FILE / --trace-format ndjson|chrome enable
   the Obs layer for the whole run and write the merged span trace and
   metrics snapshot on completion. The obs experiment cross-checks that
   tracing never changes a verdict and that emitted traces pass the
   well-formedness checker; any disagreement fails the run (exit 1).

   --json refuses to overwrite an existing report file; pass --force to
   replace it (the same applies to --trace/--metrics files).

   --portfolio N sets the worker count of the p1 clause-sharing portfolio
   experiment (default 4; clamped so --jobs x --portfolio never exceeds
   the machine's domain count); --no-share turns off learnt-clause
   sharing between its workers. p1 exits nonzero if the portfolio lane
   flips any verdict of the single-solver lane.

   --workers N sets the worker-process count of the dist experiment's
   distributed lane (default: up to 4, at least 2); --batch M its pull
   batch size. --max-restarts / --backoff SEC / --no-retry-oom configure
   the restart policy its supervisor (and `gqed campaign`) applies to
   worker deaths. dist solves every campaign cell twice — serially
   in-process and across N worker processes journaling to per-worker
   shards — and exits 1 if any verdict differs; a kill/resume lane
   SIGKILLs a worker mid-campaign and checks the merged resume matrix
   against the serial one.

   --no-reuse turns off the reuse lane of the c1 cross-query-reuse
   experiment (both lanes then solve cold; the CI reuse-smoke job runs c1
   with and without it). c1 exits nonzero if the reuse lane flips any
   verdict of the cold lane.

   --designs d1,d2 restricts s1 and c1 to the named designs; --no-simplify runs
   the solver-cost experiments (t3, f1, a2) with the formula-shrinking
   pipeline off. s1 exits nonzero if any pipeline stage changes a verdict.

   --timeout SEC and --max-conflicts N put a per-query budget on every
   check the harness runs; a check that exhausts it reports "unknown"
   instead of a verdict. --no-escalate turns off the Bmc.Escalate retry
   ladder that otherwise regrows exhausted budgets until the check
   decides. The run exits 3 when any verdict stayed unknown (and 1, as
   before, on any verdict mismatch — including a fault-induced flip in
   rob, which must never happen).

   Parallelism never changes any verdict or table cell: every task builds
   its own engine and results are reassembled in input order (see
   lib/par/DESIGN.md), so --jobs N only changes wall-clock time. *)

module Entry = Designs.Entry
module Registry = Designs.Registry
module Checks = Qed.Checks
module Theory = Qed.Theory
module Report = Bench_report.Report
module Crv = Testbench.Crv
module Productivity = Testbench.Productivity

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Parallel fan-out (--jobs) and the JSON report (--json).              *)

let jobs = ref 1

(* --no-simplify: run the solver-cost experiments (t3, f1, a2) with the
   formula-shrinking pipeline disabled, for before/after comparisons. S1
   always runs both configurations and ignores this flag. *)
let pipeline = ref Bmc.default_simplify

(* --timeout / --max-conflicts build the per-query budget every governed
   check runs under; --no-escalate disables the retry ladder. Counters are
   atomic because checks run on worker domains under Par fan-outs. *)
let timeout : float option ref = ref None
let max_conflicts : int option ref = ref None
let escalate = ref true
let unknown_verdicts = Atomic.make 0
let escalation_attempts = Atomic.make 0

(* --portfolio / --no-share configure the p1 experiment's parallel lane. *)
let portfolio_width = ref 4
let portfolio_share = ref true

(* --no-reuse turns off the c1 experiment's reuse lane (it then re-solves
   cold, like the base lane — the CI on/off smoke uses this). *)
let reuse_on = ref true

(* --workers / --batch size the dist experiment's worker-process lane;
   --max-restarts / --backoff / --no-retry-oom shape the restart policy
   its supervisor applies to worker deaths (the same knobs `gqed
   campaign` exposes). workers = 0 means auto: min(cores, 4), at least 2
   so the distributed lane is really distributed. *)
let dist_workers = ref 0
let dist_batch = ref 2
let dist_max_restarts = ref Par.Supervise.default_policy.Par.Supervise.max_restarts
let dist_backoff = ref Par.Supervise.default_policy.Par.Supervise.backoff_s
let dist_retry_oom = ref true

let dist_policy () =
  {
    Par.Supervise.max_restarts = !dist_max_restarts;
    backoff_s = !dist_backoff;
    backoff_cap_s =
      Float.max !dist_backoff
        Par.Supervise.default_policy.Par.Supervise.backoff_cap_s;
    retry_oom = !dist_retry_oom;
  }

(* --trace / --metrics / --trace-format enable the Obs layer for the whole
   run; --force permits overwriting existing report and trace files (and
   starting a fresh campaign over an existing --checkpoint journal). *)
let obs_trace_path : string option ref = ref None
let obs_metrics_path : string option ref = ref None
let obs_format : [ `Ndjson | `Chrome ] ref = ref `Ndjson
let force_overwrite = ref false

(* --checkpoint FILE journals every check's outcome to a crash-safe
   write-ahead log; --resume replays it and skips the decided keys, so a
   killed run picks up where it stopped with an identical verdict matrix.
   The skip counter is atomic because checks run on worker domains. *)
let checkpoint_path : string option ref = ref None
let checkpoint_resume = ref false
let campaign : Persist.Campaign.t option ref = ref None
let campaign_skips = Atomic.make 0

(* --seed N perturbs the seeded randomness of experiments that use any
   (currently the R2 kill point); verdicts are seed-independent, so this
   only varies which crash sites a soak run explores. *)
let seed = ref 0

(* State of the obs experiment: traced-vs-untraced verdict flips and
   structurally malformed traces each fail the whole bench run. *)
let obs_flips = ref 0
let obs_malformed = ref 0
let obs_trace_events = ref 0
let obs_trace_wellformed : bool option ref = ref None

let bench_limits () =
  match (!timeout, !max_conflicts) with
  | None, None -> Bmc.no_limits
  | t, c -> Bmc.limits ~budget:(Sat.Solver.budget ?conflicts:c ?seconds:t ()) ()

let record report =
  (match report.Checks.verdict with
  | Checks.Unknown _ -> Atomic.incr unknown_verdicts
  | Checks.Pass _ | Checks.Fail _ -> ());
  let extra = List.length report.Checks.attempts - 1 in
  if extra > 0 then ignore (Atomic.fetch_and_add escalation_attempts extra);
  report

(* Every experiment's checks funnel through here so the budget flags,
   escalation policy and the --checkpoint journal apply uniformly. With no
   budget set this is exactly the direct check: run_escalating under
   Bmc.no_limits is one attempt. [check_warm] additionally says whether
   the report was served warm from the --checkpoint journal — the timing
   experiments (t3, f1) use it so resumed rows are never mistaken for
   cold measurements. Solved cells journal their wall-clock seconds,
   which later distributed runs read back for hardest-first ordering. *)
let check_warm ?simplify ?mono ?reuse technique design iface ~bound =
  let limits = bench_limits () in
  let solve () =
    if !escalate then
      Checks.run_escalating ?simplify ?mono ~limits ?reuse technique design iface ~bound
    else Checks.run ?simplify ?mono ~limits ?reuse technique design iface ~bound
  in
  match !campaign with
  | None -> (record (solve ()), false)
  | Some c -> (
      let key = Checks.campaign_key technique design iface ~bound in
      let cached =
        (* Only decided verdicts come back from the journal (the Unknown
           rule lives in Persist.Campaign); a payload from a stale schema
           decodes to None and the task simply re-runs. *)
        Option.bind (Persist.Campaign.find_decided c key) Checks.decode_report
      in
      match cached with
      | Some r ->
          Atomic.incr campaign_skips;
          (record r, true)
      | None ->
          let r, dt = time solve in
          Persist.Campaign.record c ~seconds:dt ~decided:(Checks.report_decided r)
            ~key ~payload:(Checks.encode_report r);
          (record r, false))

let check ?simplify ?mono ?reuse technique design iface ~bound =
  fst (check_warm ?simplify ?mono ?reuse technique design iface ~bound)

(* Sum of per-task wall-clock seconds spent in Par fan-outs by the current
   experiment. task_sum / experiment_wall estimates the speedup over a
   1-domain run of the same tasks without rerunning it. *)
let par_task_seconds = ref 0.0

let par_map f xs =
  let results = Par.map_timed ~jobs:!jobs f xs in
  par_task_seconds :=
    !par_task_seconds +. List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 results;
  List.map fst results

type json_experiment = {
  je_id : string;
  je_wall_s : float;
  je_task_sum_s : float; (* 0 when the experiment ran no parallel section *)
  je_starved : bool;
      (* tasks ran under deliberately starved budgets, so the task-sum is
         not an estimate of 1-domain cost (see Bench_report.Report) *)
}

type json_solver_row = {
  js_design : string;
  js_bound : int;
  js_verdict : string;
  js_time_s : float;
  js_warm : bool;
      (* served from the --checkpoint journal without re-solving; its
         time is the lookup, not the solve — never mix with cold rows *)
  js_stats : Sat.Solver.stats;
  js_cnf_vars : int;
  js_cnf_clauses : int;
  js_simp : Bmc.Engine.simp_stats;
}

(* One S1 ablation cell: the same check with the pipeline off and fully on. *)
type json_simplify_row = {
  jp_design : string;
  jp_case : string; (* "correct" or the mutant label *)
  jp_verdict_off : string;
  jp_verdict_on : string;
  jp_vars_off : int;
  jp_vars_on : int;
  jp_clauses_off : int;
  jp_clauses_on : int;
  jp_time_off_s : float;
  jp_time_on_s : float;
}

type json_stage_row = {
  jg_design : string;
  jg_stage : string;
  jg_vars : int;
  jg_clauses : int;
  jg_time_s : float;
}

(* One R-ROB1 matrix cell: a design under a given fault rate, plus the
   escalation-recovery column (did a 1-conflict starved budget escalate back
   to the fault-free verdict?). *)
type json_rob_row = {
  jr_design : string;
  jr_rate : float;
  jr_trials : int;
  jr_unknown : int;
  jr_flips : int;
  jr_recovered : bool;
}

(* One P1 matrix cell: the same check on the single-solver lane and the
   portfolio lane, with the portfolio's sharing counters. *)
type json_portfolio_row = {
  jpf_design : string;
  jpf_case : string; (* "correct" or the mutant label *)
  jpf_verdict_single : string;
  jpf_verdict_portfolio : string;
  jpf_time_single_s : float;
  jpf_time_portfolio_s : float;
  jpf_exported : int;
  jpf_imported : int;
}

(* One C1 matrix row: a design's (correct :: mutants) cases each solved
   twice per lane — cold both times in the base lane, cold-then-memoized
   in the reuse lane. *)
type json_reuse_row = {
  jx_design : string;
  jx_cases : int;
  jx_base_s : float;
  jx_reuse_s : float; (* nan when the reuse lane was skipped (--no-reuse) *)
  jx_flips : int;
}

(* One R2 matrix cell: the same (design, case) verdict from the
   uninterrupted journaled campaign and from the killed-and-resumed one. *)
type json_campaign_row = {
  jk_design : string;
  jk_case : string; (* "correct" or the mutant label *)
  jk_full : string;
  jk_resumed : string;
}

(* One D1 matrix row: a design's slice of the combined campaign, solved
   serially (in-process, workers=1) and across N worker processes
   appending to per-worker journal shards. Times are sums of journaled
   per-cell solve seconds (task-sums, not wall-clock — the wall-clock
   speedup is the per-trial figure). *)
type json_dist_row = {
  jd_design : string;
  jd_cells : int;
  jd_serial_s : float;
  jd_dist_s : float;
  jd_flips : int;
}

let json_experiments : json_experiment list ref = ref []
let json_solver_rows : json_solver_row list ref = ref []
let json_simplify_rows : json_simplify_row list ref = ref []
let json_stage_rows : json_stage_row list ref = ref []
let json_rob_rows : json_rob_row list ref = ref []
let json_portfolio_rows : json_portfolio_row list ref = ref []
let json_simplify_geomean = ref nan
let json_portfolio_geomean = ref nan
let json_portfolio_effective = ref 1
let json_reuse_rows : json_reuse_row list ref = ref []
let json_reuse_geomean = ref nan
let json_reuse_stats : Bmc.Reuse.stats option ref = ref None
let json_campaign_rows : json_campaign_row list ref = ref []
let json_dist_rows : json_dist_row list ref = ref []
let json_dist_geomean = ref nan
let json_dist_workers = ref 0
let json_dist_restarts = ref 0
let json_dist_killed = ref false
let json_dist_resume_flips = ref 0
let json_dist_resume_skipped = ref 0
let json_dist_resume_merged = ref 0
let json_campaign_records = ref 0
let json_campaign_kill_at = ref 0
let json_campaign_skipped = ref 0
let json_campaign_rerun = ref 0
let json_campaign_write_errors = ref 0
let json_campaign_recovered_bytes = ref 0
let json_campaign_restarts = ref 0
let json_campaign_gave_up = ref 0

(* Verdict flips between the uninterrupted and the killed-and-resumed
   campaign detected by R2 (plus supervised tasks that misbehaved); like
   the other flip counters, nonzero fails the whole bench run. *)
let campaign_flips = ref 0

(* Verdict flips between the serial and the N-worker-process lane (or the
   killed-and-resumed one) detected by dist; nonzero fails the run. *)
let dist_flips = ref 0

(* Verdict flips between the cold and reuse lanes detected by C1; a nonzero
   count fails the whole bench run. *)
let reuse_flips = ref 0

(* Fault-induced verdict flips detected by rob; like pipeline verdict
   mismatches, a nonzero count fails the whole bench run. *)
let rob_flips = ref 0

(* Verdict mismatches between pipeline configurations detected by S1; a
   nonzero count fails the whole bench run (CI perf-smoke trips on it). *)
let verdict_mismatches = ref 0

(* Verdict flips between the single-solver and portfolio lanes detected by
   P1; a nonzero count fails the whole bench run. *)
let portfolio_flips = ref 0

let write_json path =
  let buf = Buffer.create 4096 in
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"gqed-bench/7\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"date\": \"%04d-%02d-%02d\",\n" (tm.Unix.tm_year + 1900)
       (tm.Unix.tm_mon + 1) tm.Unix.tm_mday);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" !jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Par.default_jobs ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"unknown_verdicts\": %d,\n" (Atomic.get unknown_verdicts));
  Buffer.add_string buf
    (Printf.sprintf "  \"escalation_attempts\": %d,\n" (Atomic.get escalation_attempts));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"obs\": {\"enabled\": %b, \"trace_events\": %d, \"trace_wellformed\": %s, \
        \"verdict_flips\": %d},\n"
       (Obs.on ()) !obs_trace_events
       (match !obs_trace_wellformed with
       | None -> "null"
       | Some b -> string_of_bool b)
       !obs_flips);
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i e ->
      let speedup =
        Report.json_float_opt
          (Report.est_speedup_vs_1domain ~starved:e.je_starved ~wall_s:e.je_wall_s
             ~task_sum_s:e.je_task_sum_s)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": %S, \"wall_s\": %.3f, \"task_sum_s\": %.3f, \
            \"starved\": %b, \"est_speedup_vs_1domain\": %s}%s\n"
           e.je_id e.je_wall_s e.je_task_sum_s e.je_starved speedup
           (if i = List.length !json_experiments - 1 then "" else ",")))
    !json_experiments;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"solver\": [\n";
  let rows = !json_solver_rows in
  List.iteri
    (fun i r ->
      let st = r.js_stats in
      let sp = r.js_simp in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"bound\": %d, \"verdict\": %S, \"time_s\": %.3f, \
            \"warm\": %b, \
            \"cnf_vars\": %d, \"cnf_clauses\": %d, \"conflicts\": %d, \"decisions\": %d, \
            \"propagations\": %d, \"restarts\": %d, \"learnt_clauses\": %d, \
            \"clauses_exported\": %d, \"clauses_imported\": %d, \
            \"simp\": {\"queries\": %d, \"coi_regs_before\": %d, \"coi_regs_after\": %d, \
            \"rewrite_hits\": %d, \"clauses_emitted\": %d, \"clauses_plain\": %d, \
            \"single_pol_nodes\": %d, \"pre_subsumed\": %d, \"pre_strengthened\": %d, \
            \"pre_eliminated\": %d, \"pre_units\": %d, \"t_rewrite_s\": %.3f, \
            \"t_cnf_s\": %.3f}}%s\n"
           r.js_design r.js_bound r.js_verdict r.js_time_s r.js_warm r.js_cnf_vars
           r.js_cnf_clauses
           st.Sat.Solver.conflicts st.Sat.Solver.decisions st.Sat.Solver.propagations
           st.Sat.Solver.restarts st.Sat.Solver.learnt_clauses
           st.Sat.Solver.clauses_exported st.Sat.Solver.clauses_imported
           sp.Bmc.Engine.ss_queries
           sp.Bmc.Engine.ss_coi_regs_before sp.Bmc.Engine.ss_coi_regs_after
           sp.Bmc.Engine.ss_rewrite_hits sp.Bmc.Engine.ss_clauses_emitted
           sp.Bmc.Engine.ss_clauses_plain sp.Bmc.Engine.ss_single_pol
           sp.Bmc.Engine.ss_pre.Sat.Solver.pre_subsumed
           sp.Bmc.Engine.ss_pre.Sat.Solver.pre_strengthened
           sp.Bmc.Engine.ss_pre.Sat.Solver.pre_eliminated
           sp.Bmc.Engine.ss_pre.Sat.Solver.pre_units sp.Bmc.Engine.ss_t_rewrite
           sp.Bmc.Engine.ss_t_cnf
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"simplify\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"geo_mean_clause_reduction\": %s,\n"
       (if Float.is_nan !json_simplify_geomean then "null"
        else Printf.sprintf "%.4f" !json_simplify_geomean));
  Buffer.add_string buf
    (Printf.sprintf "    \"verdict_mismatches\": %d,\n" !verdict_mismatches);
  Buffer.add_string buf "    \"matrix\": [\n";
  let srows = !json_simplify_rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"design\": %S, \"case\": %S, \"verdict_off\": %S, \"verdict_on\": %S, \
            \"vars_off\": %d, \"vars_on\": %d, \"clauses_off\": %d, \"clauses_on\": %d, \
            \"time_off_s\": %.3f, \"time_on_s\": %.3f}%s\n"
           r.jp_design r.jp_case r.jp_verdict_off r.jp_verdict_on r.jp_vars_off r.jp_vars_on
           r.jp_clauses_off r.jp_clauses_on r.jp_time_off_s r.jp_time_on_s
           (if i = List.length srows - 1 then "" else ",")))
    srows;
  Buffer.add_string buf "    ],\n";
  Buffer.add_string buf "    \"ablation\": [\n";
  let grows = !json_stage_rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"design\": %S, \"stage\": %S, \"vars\": %d, \"clauses\": %d, \
            \"time_s\": %.3f}%s\n"
           r.jg_design r.jg_stage r.jg_vars r.jg_clauses r.jg_time_s
           (if i = List.length grows - 1 then "" else ",")))
    grows;
  Buffer.add_string buf "    ]\n  },\n";
  Buffer.add_string buf "  \"robustness\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"verdict_flips\": %d,\n" !rob_flips);
  Buffer.add_string buf "    \"matrix\": [\n";
  let rrows = !json_rob_rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"design\": %S, \"rate\": %.3f, \"trials\": %d, \"unknown\": %d, \
            \"flips\": %d, \"escalation_recovered\": %b}%s\n"
           r.jr_design r.jr_rate r.jr_trials r.jr_unknown r.jr_flips r.jr_recovered
           (if i = List.length rrows - 1 then "" else ",")))
    rrows;
  Buffer.add_string buf "    ]\n  },\n";
  Buffer.add_string buf "  \"portfolio\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"requested_workers\": %d,\n" !portfolio_width);
  Buffer.add_string buf
    (Printf.sprintf "    \"effective_workers\": %d,\n" !json_portfolio_effective);
  Buffer.add_string buf (Printf.sprintf "    \"share\": %b,\n" !portfolio_share);
  Buffer.add_string buf
    (Printf.sprintf "    \"verdict_flips\": %d,\n" !portfolio_flips);
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_geo_mean\": %s,\n"
       (if Float.is_nan !json_portfolio_geomean then "null"
        else Printf.sprintf "%.4f" !json_portfolio_geomean));
  let prows = !json_portfolio_rows in
  let p_exp = List.fold_left (fun a r -> a + r.jpf_exported) 0 prows in
  let p_imp = List.fold_left (fun a r -> a + r.jpf_imported) 0 prows in
  Buffer.add_string buf (Printf.sprintf "    \"clauses_exported\": %d,\n" p_exp);
  Buffer.add_string buf (Printf.sprintf "    \"clauses_imported\": %d,\n" p_imp);
  Buffer.add_string buf
    (Printf.sprintf "    \"share_hit_rate\": %s,\n"
       (if p_exp = 0 then "null"
        else Printf.sprintf "%.4f" (float_of_int p_imp /. float_of_int p_exp)));
  Buffer.add_string buf "    \"matrix\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"design\": %S, \"case\": %S, \"verdict_single\": %S, \
            \"verdict_portfolio\": %S, \"time_single_s\": %.3f, \
            \"time_portfolio_s\": %.3f, \"exported\": %d, \"imported\": %d}%s\n"
           r.jpf_design r.jpf_case r.jpf_verdict_single r.jpf_verdict_portfolio
           r.jpf_time_single_s r.jpf_time_portfolio_s r.jpf_exported r.jpf_imported
           (if i = List.length prows - 1 then "" else ",")))
    prows;
  Buffer.add_string buf "    ]\n  },\n";
  Buffer.add_string buf "  \"reuse\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"enabled\": %b,\n" !reuse_on);
  Buffer.add_string buf (Printf.sprintf "    \"verdict_flips\": %d,\n" !reuse_flips);
  Buffer.add_string buf
    (Printf.sprintf "    \"task_sum_reduction_geo_mean\": %s,\n"
       (if Float.is_nan !json_reuse_geomean then "null"
        else Printf.sprintf "%.4f" !json_reuse_geomean));
  let rs =
    match !json_reuse_stats with
    | Some s -> s
    | None ->
        {
          Bmc.Reuse.r_memo_hits = 0;
          r_memo_misses = 0;
          r_published = 0;
          r_pub_dropped = 0;
          r_imported = 0;
          r_cone_shared = 0;
          r_cone_new = 0;
        }
  in
  Buffer.add_string buf
    (Printf.sprintf
       "    \"memo_hits\": %d,\n    \"memo_misses\": %d,\n    \
        \"lemmas_published\": %d,\n    \"lemmas_dropped\": %d,\n    \
        \"lemmas_imported\": %d,\n    \"cones_shared\": %d,\n    \
        \"cones_new\": %d,\n"
       rs.Bmc.Reuse.r_memo_hits rs.Bmc.Reuse.r_memo_misses rs.Bmc.Reuse.r_published
       rs.Bmc.Reuse.r_pub_dropped rs.Bmc.Reuse.r_imported rs.Bmc.Reuse.r_cone_shared
       rs.Bmc.Reuse.r_cone_new);
  Buffer.add_string buf "    \"matrix\": [\n";
  let xrows = !json_reuse_rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"design\": %S, \"cases\": %d, \"base_s\": %.3f, \"reuse_s\": %s, \
            \"flips\": %d}%s\n"
           r.jx_design r.jx_cases r.jx_base_s
           (if Float.is_nan r.jx_reuse_s then "null"
            else Printf.sprintf "%.3f" r.jx_reuse_s)
           r.jx_flips
           (if i = List.length xrows - 1 then "" else ",")))
    xrows;
  Buffer.add_string buf "    ]\n  },\n";
  Buffer.add_string buf "  \"campaign\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"checkpoint\": %s,\n"
       (match !checkpoint_path with
       | None -> "null"
       | Some p -> Printf.sprintf "%S" p));
  Buffer.add_string buf
    (Printf.sprintf "    \"checkpoint_skips\": %d,\n" (Atomic.get campaign_skips));
  Buffer.add_string buf (Printf.sprintf "    \"records\": %d,\n" !json_campaign_records);
  Buffer.add_string buf (Printf.sprintf "    \"kill_at\": %d,\n" !json_campaign_kill_at);
  Buffer.add_string buf
    (Printf.sprintf "    \"skipped_on_resume\": %d,\n" !json_campaign_skipped);
  Buffer.add_string buf (Printf.sprintf "    \"rerun\": %d,\n" !json_campaign_rerun);
  Buffer.add_string buf
    (Printf.sprintf "    \"verdict_flips\": %d,\n" !campaign_flips);
  Buffer.add_string buf
    (Printf.sprintf "    \"write_errors\": %d,\n" !json_campaign_write_errors);
  Buffer.add_string buf
    (Printf.sprintf "    \"recovered_bytes\": %d,\n" !json_campaign_recovered_bytes);
  Buffer.add_string buf
    (Printf.sprintf "    \"supervisor_restarts\": %d,\n" !json_campaign_restarts);
  Buffer.add_string buf
    (Printf.sprintf "    \"supervisor_gave_up\": %d,\n" !json_campaign_gave_up);
  Buffer.add_string buf "    \"matrix\": [\n";
  let krows = !json_campaign_rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"design\": %S, \"case\": %S, \"full\": %S, \"resumed\": %S}%s\n"
           r.jk_design r.jk_case r.jk_full r.jk_resumed
           (if i = List.length krows - 1 then "" else ",")))
    krows;
  Buffer.add_string buf "    ]\n  },\n";
  Buffer.add_string buf "  \"dist\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"workers\": %d,\n" !json_dist_workers);
  Buffer.add_string buf (Printf.sprintf "    \"batch\": %d,\n" !dist_batch);
  Buffer.add_string buf (Printf.sprintf "    \"verdict_flips\": %d,\n" !dist_flips);
  Buffer.add_string buf
    (Printf.sprintf "    \"speedup_geo_mean\": %s,\n"
       (if Float.is_nan !json_dist_geomean then "null"
        else Printf.sprintf "%.4f" !json_dist_geomean));
  Buffer.add_string buf
    (Printf.sprintf "    \"worker_restarts\": %d,\n" !json_dist_restarts);
  Buffer.add_string buf
    (Printf.sprintf
       "    \"kill\": {\"killed\": %b, \"resume_flips\": %d, \
        \"skipped_on_resume\": %d, \"merged_records\": %d},\n"
       !json_dist_killed !json_dist_resume_flips !json_dist_resume_skipped
       !json_dist_resume_merged);
  Buffer.add_string buf "    \"matrix\": [\n";
  let drows = !json_dist_rows in
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "      {\"design\": %S, \"cells\": %d, \"serial_task_s\": %.3f, \
            \"dist_task_s\": %.3f, \"flips\": %d}%s\n"
           r.jd_design r.jd_cells r.jd_serial_s r.jd_dist_s r.jd_flips
           (if i = List.length drows - 1 then "" else ",")))
    drows;
  Buffer.add_string buf "    ]\n  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "bench report written to %s\n" path

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let passed report =
  match report.Checks.verdict with
  | Checks.Pass _ -> true
  | Checks.Fail _ | Checks.Unknown _ -> false

(* Detection means a concrete counterexample: an Unknown is neither a pass
   nor a detection, so tables never credit a bug to an exhausted budget. *)
let failed report =
  match report.Checks.verdict with
  | Checks.Fail _ -> true
  | Checks.Pass _ | Checks.Unknown _ -> false

let cex_length report =
  match report.Checks.verdict with
  | Checks.Fail f -> Some f.Checks.witness.Bmc.w_length
  | Checks.Pass _ | Checks.Unknown _ -> None

let verdict_key report =
  match report.Checks.verdict with
  | Checks.Pass n -> Printf.sprintf "pass@%d" n
  | Checks.Fail f ->
      Printf.sprintf "fail:%s@%d"
        (Checks.failure_kind_to_string f.Checks.kind)
        f.Checks.witness.Bmc.w_length
  | Checks.Unknown u ->
      Printf.sprintf "unknown:%s@%d"
        (Sat.Solver.reason_to_string u.Checks.u_reason)
        u.Checks.u_bound

let short_verdict report =
  match report.Checks.verdict with
  | Checks.Pass _ -> "pass"
  | Checks.Fail _ -> "FAIL"
  | Checks.Unknown _ -> "unknown"

let class_name e = if e.Entry.interfering then "interfering" else "non-interf."

(* Shared mutant suites (one mutant per operator so the harness stays fast). *)
let mutant_suite e = Mutation.mutants ~per_operator_limit:1 e.Entry.design

(* ------------------------------------------------------------------ *)
(* T1: benchmark suite characteristics.                                 *)

let t1 () =
  header "T1  Benchmark suite characteristics";
  Printf.printf "%-12s %-12s %6s %6s %6s %8s %6s\n" "design" "class" "state" "input"
    "nodes" "mutants" "bound";
  List.iter
    (fun e ->
      let state_bits, input_bits, nodes = Rtl.stats e.Entry.design in
      Printf.printf "%-12s %-12s %6d %6d %6d %8d %6d\n" e.Entry.name (class_name e)
        state_bits input_bits nodes
        (List.length (mutant_suite e))
        e.Entry.rec_bound)
    Registry.all

(* ------------------------------------------------------------------ *)
(* T2: bug-detection matrix (the headline table).                       *)

type t2_row = {
  r_name : string;
  r_interfering : bool;
  r_mutants : int;
  r_crv : int;
  r_aqed : int;
  r_aqed_false_alarm : bool;
  r_gqed : int;
  r_gqed_cex : int list; (* witness lengths of G-QED detections *)
  r_crv_cycles : int list; (* cycles-to-detection of CRV detections *)
  r_escapes_caught : int; (* CRV missed, G-QED flow caught *)
}

(* One task per matrix cell (design x mutant) plus one false-alarm task per
   design; the whole matrix fans out over domains at once and the rows are
   reassembled in registry order, so the printed table is independent of
   [jobs]. *)
type t2_cell = {
  cc_crv_detected : bool;
  cc_crv_cycles : int;
  cc_aqed_hit : bool;
  cc_gqed_hit : bool;
  cc_gqed_cex : int option;
}

let t2_compute () =
  let tasks =
    List.concat_map
      (fun e ->
        `Alarm e :: List.map (fun (_m, mutant) -> `Cell (e, mutant)) (mutant_suite e))
      Registry.all
  in
  let results =
    par_map
      (function
        | `Alarm e ->
            Printf.eprintf "  [t2] %s...\n%!" e.Entry.name;
            (* Does A-QED false-alarm on the correct design? (It does, on
               every interfering design — the paper's motivation.) *)
            `Alarm_r
              (e.Entry.interfering
              && failed
                   (check Checks.Aqed e.Entry.design e.Entry.iface
                      ~bound:e.Entry.rec_bound))
        | `Cell (e, mutant) ->
            let bound = e.Entry.rec_bound in
            let crv =
              Crv.run ~design_override:mutant e
                { Crv.seed = 1; max_transactions = 500; idle_prob = 0.2 }
            in
            (* A-QED only applies to non-interfering designs; on interfering
               ones it already rejects the bug-free design. *)
            let aqed_hit =
              (not e.Entry.interfering)
              && failed (check Checks.Aqed mutant e.Entry.iface ~bound)
            in
            let g = check Checks.Gqed_flow mutant e.Entry.iface ~bound in
            `Cell_r
              {
                cc_crv_detected = crv.Crv.detected;
                cc_crv_cycles = crv.Crv.cycles_run;
                cc_aqed_hit = aqed_hit;
                cc_gqed_hit = failed g;
                cc_gqed_cex = cex_length g;
              })
      tasks
  in
  (* Tasks and results align by index; reassemble per-design rows. *)
  let combined = List.combine tasks results in
  List.map
    (fun e ->
      let aqed_false_alarm =
        List.exists
          (function `Alarm e', `Alarm_r fa -> e' == e && fa | _ -> false)
          combined
      in
      let cells =
        List.filter_map
          (function `Cell (e', _), `Cell_r c when e' == e -> Some c | _ -> None)
          combined
      in
      let count f = List.fold_left (fun acc c -> if f c then acc + 1 else acc) 0 cells in
      {
        r_name = e.Entry.name;
        r_interfering = e.Entry.interfering;
        r_mutants = List.length cells;
        r_crv = count (fun c -> c.cc_crv_detected);
        r_aqed = count (fun c -> c.cc_aqed_hit);
        r_aqed_false_alarm = aqed_false_alarm;
        r_gqed = count (fun c -> c.cc_gqed_hit);
        r_gqed_cex = List.filter_map (fun c -> c.cc_gqed_cex) cells;
        r_crv_cycles =
          List.filter_map
            (fun c -> if c.cc_crv_detected then Some c.cc_crv_cycles else None)
            cells;
        r_escapes_caught = count (fun c -> c.cc_gqed_hit && not c.cc_crv_detected);
      })
    Registry.all

let t2_rows = lazy (t2_compute ())

let t2 () =
  header "T2  Bug detection per design: CRV baseline vs A-QED vs G-QED";
  Printf.printf
    "(mutant suites: one mutant per operator; CRV budget 500 transactions)\n";
  Printf.printf "%-12s %8s %12s %14s %10s\n" "design" "mutants" "CRV" "A-QED" "G-QED flow";
  let rows = Lazy.force t2_rows in
  List.iter
    (fun row ->
      let aqed_str =
        if row.r_interfering then
          if row.r_aqed_false_alarm then "false-alarm" else "n/a"
        else Printf.sprintf "%d/%d" row.r_aqed row.r_mutants
      in
      Printf.printf "%-12s %8d %12s %14s %10s\n" row.r_name row.r_mutants
        (Printf.sprintf "%d/%d" row.r_crv row.r_mutants)
        aqed_str
        (Printf.sprintf "%d/%d" row.r_gqed row.r_mutants))
    rows;
  let total f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Printf.printf "%-12s %8d %12d %14s %10d\n" "TOTAL"
    (total (fun r -> r.r_mutants))
    (total (fun r -> r.r_crv))
    "-"
    (total (fun r -> r.r_gqed));
  Printf.printf
    "\nBugs that ESCAPED the 500-transaction CRV flow but were caught by the\n\
     G-QED flow (the abstract's headline class): %d\n"
    (total (fun r -> r.r_escapes_caught));
  Printf.printf
    "\nNotes: A-QED false-alarms on every correct interfering design (its FC\n\
     property does not hold there), which is the paper's motivation for G-QED.\n\
     G-QED escapes are uniform bugs (e.g. stuck architectural registers) that\n\
     no self-consistency technique can see without a specification; the\n\
     golden-model CRV baseline catches those but pays for the model (T4).\n"

(* ------------------------------------------------------------------ *)
(* T3: G-QED cost on the correct designs (runtime, CNF, conflicts).     *)

let t3 () =
  header "T3  G-QED verification cost on correct designs";
  Printf.printf "%-12s %6s %9s %9s %10s %9s %8s\n" "design" "bound" "vars" "clauses"
    "conflicts" "verdict" "time(s)";
  (* Per-design rows fan out over domains; printing stays in registry order. *)
  let rows =
    Par.map_timed ~jobs:!jobs
      (fun e ->
        (e, check_warm ~simplify:!pipeline Checks.Gqed e.Entry.design e.Entry.iface
              ~bound:e.Entry.rec_bound))
      Registry.all
  in
  par_task_seconds :=
    !par_task_seconds +. List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 rows;
  List.iter
    (fun ((e, (report, warm)), dt) ->
      Printf.printf "%-12s %6d %9d %9d %10d %9s %8.2f%s\n%!" e.Entry.name
        e.Entry.rec_bound report.Checks.cnf_vars report.Checks.cnf_clauses
        report.Checks.sat_stats.Sat.Solver.conflicts (short_verdict report) dt
        (if warm then "  (journal)" else "");
      json_solver_rows :=
        !json_solver_rows
        @ [
            {
              js_design = e.Entry.name;
              js_bound = e.Entry.rec_bound;
              js_verdict = verdict_key report;
              js_time_s = dt;
              js_warm = warm;
              js_stats = report.Checks.sat_stats;
              js_cnf_vars = report.Checks.cnf_vars;
              js_cnf_clauses = report.Checks.cnf_clauses;
              js_simp = report.Checks.simp;
            };
          ])
    rows

(* ------------------------------------------------------------------ *)
(* T4: productivity model (the 370 -> 21 person-days claim).            *)

let t4 () =
  header "T4  Verification productivity (effort model; see EXPERIMENTS.md)";
  Printf.printf "%-12s %15s %15s %8s\n" "design" "conventional" "G-QED flow" "ratio";
  let mmio = Registry.find "mmio_engine" in
  let kappa = Productivity.scale_to_industrial mmio in
  List.iter
    (fun e ->
      let conv = (Productivity.conventional e).Productivity.total_days *. kappa in
      let gq = (Productivity.gqed e).Productivity.total_days *. kappa in
      Printf.printf "%-12s %12.0f pd %12.0f pd %7.1fx%s\n" e.Entry.name conv gq
        (conv /. gq)
        (if e.Entry.name = "mmio_engine" then "   <- case study (paper: 370 vs 21 pd, 18x)"
         else ""))
    Registry.all;
  Printf.printf "\nmmio_engine breakdown (model units):\n";
  Printf.printf "  conventional: %s\n"
    (Format.asprintf "%a" Productivity.pp_effort (Productivity.conventional mmio));
  Printf.printf "  G-QED flow:   %s\n"
    (Format.asprintf "%a" Productivity.pp_effort (Productivity.gqed mmio))

(* ------------------------------------------------------------------ *)
(* T5: soundness / completeness validation.                             *)

let t5 () =
  header "T5  Theory validation (bounded-exhaustive + per-witness soundness)";
  let small = [ "accum"; "maxtrack"; "rle"; "seqdet"; "histogram" ] in
  Printf.printf "%-12s %24s %8s %8s\n" "design" "brute-force table" "G-QED" "agree";
  par_map
    (fun name ->
      let e = Registry.find name in
      let alphabet =
        Theory.default_alphabet ~operand_values:[ 0; 1; 3 ] e.Entry.design e.Entry.iface
      in
      let table =
        Theory.transaction_table e.Entry.design e.Entry.iface ~alphabet ~depth:4
      in
      let report = check Checks.Gqed e.Entry.design e.Entry.iface ~bound:6 in
      (name, table, passed report))
    small
  |> List.iter (fun (name, table, pass) ->
         let table_str =
           match table with
           | `Deterministic n -> Printf.sprintf "deterministic (%d keys)" n
           | `Conflict _ -> "CONFLICT"
         in
         let agree =
           match (table, pass) with
           | `Deterministic _, true | `Conflict _, false -> "yes"
           | _ -> "NO"
         in
         Printf.printf "%-12s %24s %8s %8s\n%!" name table_str
           (if pass then "pass" else "fail")
           agree);
  Printf.printf "\nInjected interference (hidden-output mutants):\n";
  par_map
    (fun name ->
      let e = Registry.find name in
      match
        List.find_map
          (fun (m, d) ->
            if m.Mutation.operator = Mutation.Hidden_output then Some d else None)
          (Mutation.mutants e.Entry.design)
      with
      | None -> None
      | Some mutant ->
          let alphabet =
            Theory.default_alphabet ~operand_values:[ 0; 1; 3 ] mutant e.Entry.iface
          in
          let table = Theory.transaction_table mutant e.Entry.iface ~alphabet ~depth:4 in
          let report = check Checks.Gqed mutant e.Entry.iface ~bound:6 in
          let genuine =
            match report.Checks.verdict with
            | Checks.Fail f -> Theory.witness_is_genuine mutant e.Entry.iface f
            | Checks.Pass _ | Checks.Unknown _ -> false
          in
          Some (name, table, passed report, genuine))
    small
  |> List.iter (function
       | None -> ()
       | Some (name, table, pass, genuine) ->
           Printf.printf "  %-12s brute-force=%-8s gqed=%-5s witness-genuine=%b\n%!" name
             (match table with `Conflict _ -> "conflict" | `Deterministic _ -> "det")
             (if pass then "pass" else "fail")
             genuine);
  (* Every G-QED counterexample found on three mutant suites replays as a
     genuine inconsistency. One task per (design, mutant) pair. *)
  let pairs =
    List.concat_map
      (fun name ->
        let e = Registry.find name in
        List.map (fun (_m, mutant) -> (e, mutant)) (mutant_suite e))
      [ "accum"; "maxtrack"; "seqdet" ]
  in
  let verdicts =
    par_map
      (fun (e, mutant) ->
        let report = check Checks.Gqed mutant e.Entry.iface ~bound:e.Entry.rec_bound in
        match report.Checks.verdict with
        | Checks.Fail f -> Some (Theory.witness_is_genuine mutant e.Entry.iface f)
        | Checks.Pass _ | Checks.Unknown _ -> None)
      pairs
  in
  let total = List.length (List.filter Option.is_some verdicts) in
  let genuine = List.length (List.filter (fun v -> v = Some true) verdicts) in
  Printf.printf "\nWitness soundness: %d/%d reported counterexamples replay as genuine\n"
    genuine total

(* ------------------------------------------------------------------ *)
(* A1: ablation — G-QED with vs without the post-state conjunct.        *)

let a1 () =
  header "A1  Ablation: post-state conjunct (hidden-state mutants of arch regs)";
  Printf.printf "%-12s %22s %22s\n" "design" "G-QED(full)" "G-QED(out-only)";
  par_map
    (fun e ->
      if not e.Entry.interfering then None
      else
        match
          List.find_map
            (fun (m, d) ->
              if
                m.Mutation.operator = Mutation.Hidden_state
                && List.exists
                     (fun r -> "next(" ^ r ^ ")" = m.Mutation.target)
                     e.Entry.iface.Qed.Iface.arch_regs
              then Some d
              else None)
            (Mutation.mutants e.Entry.design)
        with
        | None -> None
        | Some mutant ->
            let full = check Checks.Gqed mutant e.Entry.iface ~bound:e.Entry.rec_bound in
            let out_only =
              check Checks.Gqed_output_only mutant e.Entry.iface ~bound:e.Entry.rec_bound
            in
            Some (e.Entry.name, full, out_only))
    Registry.all
  |> List.iter (function
       | None -> ()
       | Some (name, full, out_only) ->
           let show r =
             match r.Checks.verdict with
             | Checks.Pass _ -> "missed"
             | Checks.Fail f -> "caught:" ^ Checks.failure_kind_to_string f.Checks.kind
             | Checks.Unknown _ -> "unknown"
           in
           Printf.printf "%-12s %22s %22s\n%!" name (show full) (show out_only))

(* ------------------------------------------------------------------ *)
(* A2: ablation — incremental vs monolithic BMC.                        *)

let a2 () =
  header "A2  Ablation: incremental vs monolithic BMC (accum reachability)";
  let e = Registry.find "accum" in
  let assumes =
    [
      Expr.ult (Expr.var "x" 4) (Expr.const_int ~width:4 2);
      Expr.eq (Expr.var "cmd" 1) (Expr.const_int ~width:1 0);
    ]
  in
  let invariant = Expr.ne (Expr.var "acc" 4) (Expr.const_int ~width:4 15) in
  Printf.printf "%-8s %14s %14s %10s\n" "depth" "incremental(s)" "monolithic(s)" "result";
  List.iter
    (fun depth ->
      let (r1, _), t_inc =
        time (fun () ->
            Bmc.check_safety ~assumes ~simplify:!pipeline ~limits:(bench_limits ())
              ~design:e.Entry.design ~invariant ~depth ())
      in
      let (r2, _), t_mono =
        time (fun () ->
            Bmc.check_safety_mono ~assumes ~simplify:!pipeline ~limits:(bench_limits ())
              ~design:e.Entry.design ~invariant ~depth ())
      in
      let result, same =
        match (r1, r2) with
        | Bmc.Holds a, Bmc.Holds b -> (Printf.sprintf "holds<=%d" a, a = b)
        | Bmc.Violated a, Bmc.Violated b ->
            (Printf.sprintf "cex@%d" a.Bmc.w_length, a.Bmc.w_length = b.Bmc.w_length)
        | (Bmc.Unknown u, _ | _, Bmc.Unknown u) ->
            (* Not a mismatch: one side gave up under the --timeout or
               --max-conflicts budget, so there is nothing to compare. *)
            (Printf.sprintf "unknown:%s" (Sat.Solver.reason_to_string u.Bmc.un_reason), true)
        | _ -> ("DISAGREE", false)
      in
      Printf.printf "%-8d %14.3f %14.3f %10s%s\n%!" depth t_inc t_mono result
        (if same then "" else "  MISMATCH"))
    [ 4; 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* A3: ablation — monolithic vs decomposed verification (A-QED^2).      *)

let a3 () =
  header "A3  Ablation: monolithic vs decomposed verification (peak_accum)";
  let e = Registry.find "peak_accum" in
  let mono, t_mono =
    time (fun () -> check Checks.Gqed e.Entry.design e.Entry.iface ~bound:e.Entry.rec_bound)
  in
  let dec, t_dec =
    time (fun () ->
        Qed.Decompose.check_all Designs.Peak_accum.decomposition ~bound:e.Entry.rec_bound)
  in
  Printf.printf "monolithic G-QED:   %-10s %6.2fs  (%d vars, %d clauses)\n"
    (short_verdict mono) t_mono mono.Checks.cnf_vars mono.Checks.cnf_clauses;
  Printf.printf "decomposed (A-QED^2): %-8s %6.2fs  (%d sub-accelerators)\n"
    (if dec.Qed.Decompose.all_pass then "pass" else "FAIL")
    t_dec
    (List.length dec.Qed.Decompose.results);
  (* Bug localization: seed a mux bug into the tracker half of the
     composition; the decomposition finds it in the right sub. *)
  let buggy_sub =
    List.find_map
      (fun (m, d) ->
        if m.Mutation.operator = Mutation.Ite_flip then Some d else None)
      (Mutation.mutants (Registry.find "maxtrack").Entry.design)
  in
  match buggy_sub with
  | None -> ()
  | Some buggy ->
      let subs =
        List.map
          (fun sub ->
            if sub.Qed.Decompose.sub_name = "maxtrack" then
              { sub with Qed.Decompose.sub_design = buggy }
            else sub)
          Designs.Peak_accum.decomposition
      in
      let r = Qed.Decompose.check_all subs ~bound:e.Entry.rec_bound in
      (match Qed.Decompose.first_failure r with
      | Some (name, f) ->
          Printf.printf "seeded tracker bug localized to sub-accelerator %s (%s)\n" name
            (Checks.failure_kind_to_string f.Checks.kind)
      | None -> Printf.printf "seeded bug NOT localized\n")

(* ------------------------------------------------------------------ *)
(* S1: formula-shrinking pipeline — per-stage ablation and the           *)
(* off-vs-on design x mutant matrix.                                     *)

let design_filter : string list option ref = ref None

let s1_entries () =
  match !design_filter with
  | None -> Registry.all
  | Some names ->
      List.iter
        (fun n ->
          if not (List.exists (fun e -> e.Entry.name = n) Registry.all) then begin
            Printf.eprintf "bench: --designs: unknown design %s\n" n;
            exit 2
          end)
        names;
      List.filter (fun e -> List.mem e.Entry.name names) Registry.all

let s1 () =
  header "S1  Formula-shrinking pipeline: stage ablation + off-vs-on matrix";
  let entries = s1_entries () in
  let stages =
    [
      ("off", Bmc.no_simplify);
      ("coi", { Bmc.no_simplify with Bmc.sc_coi = true });
      ("rewrite", { Bmc.no_simplify with Bmc.sc_rewrite = true });
      ("pg", { Bmc.no_simplify with Bmc.sc_pg = true });
      ("cnf", { Bmc.no_simplify with Bmc.sc_cnf = true });
      ("all", Bmc.default_simplify);
    ]
  in
  (* Per-stage ablation on the correct designs, in monolithic mode (the
     mode where every stage of the pipeline is live — per-query compaction
     and BVE are no-ops on the incremental engine). "clauses" is the total
     number of clauses sent to the solver over all SAT queries of the
     check. Any stage changing the verdict is a verifier bug and fails the
     bench run. *)
  Printf.printf
    "per-stage clauses sent (correct designs, monolithic G-QED at the recommended bound):\n";
  Printf.printf "%-12s %-8s %9s %9s %10s %8s\n" "design" "stage" "vars" "clauses" "verdict"
    "time(s)";
  let ablation =
    par_map
      (fun (e, (stage, conf)) ->
        let report, dt =
          time (fun () ->
              check ~simplify:conf ~mono:true Checks.Gqed e.Entry.design e.Entry.iface
                ~bound:e.Entry.rec_bound)
        in
        (e.Entry.name, stage, report, dt))
      (List.concat_map (fun e -> List.map (fun s -> (e, s)) stages) entries)
  in
  let baseline_verdict name =
    List.find_map
      (fun (n, stage, r, _) -> if n = name && stage = "off" then Some (verdict_key r) else None)
      ablation
  in
  List.iter
    (fun (name, stage, report, dt) ->
      let vk = verdict_key report in
      let mismatch = baseline_verdict name <> Some vk in
      if mismatch then incr verdict_mismatches;
      let sent = report.Checks.simp.Bmc.Engine.ss_clauses_emitted in
      Printf.printf "%-12s %-8s %9d %9d %10s %8.2f%s\n%!" name stage report.Checks.cnf_vars
        sent vk dt
        (if mismatch then "  VERDICT MISMATCH" else "");
      json_stage_rows :=
        !json_stage_rows
        @ [
            {
              jg_design = name;
              jg_stage = stage;
              jg_vars = report.Checks.cnf_vars;
              jg_clauses = sent;
              jg_time_s = dt;
            };
          ])
    ablation;
  (* Off-vs-on over the full design x mutant matrix (same mutant suites as
     T2), monolithic mode on both sides so the comparison is controlled.
     "Clauses" is again the total sent to the solver over the whole check;
     the per-case ratios feed the geo-mean reduction figure. *)
  let cases =
    List.concat_map
      (fun e ->
        ("correct", e, e.Entry.design)
        :: List.map
             (fun (m, mutant) ->
               ( Printf.sprintf "%s:%s" (Mutation.operator_to_string m.Mutation.operator)
                   m.Mutation.target,
                 e,
                 mutant ))
             (mutant_suite e))
      entries
  in
  let matrix =
    par_map
      (fun (label, e, design) ->
        let off, t_off =
          time (fun () ->
              check ~simplify:Bmc.no_simplify ~mono:true Checks.Gqed design e.Entry.iface
                ~bound:e.Entry.rec_bound)
        in
        let on, t_on =
          time (fun () ->
              check ~mono:true Checks.Gqed design e.Entry.iface ~bound:e.Entry.rec_bound)
        in
        {
          jp_design = e.Entry.name;
          jp_case = label;
          jp_verdict_off = verdict_key off;
          jp_verdict_on = verdict_key on;
          jp_vars_off = off.Checks.cnf_vars;
          jp_vars_on = on.Checks.cnf_vars;
          jp_clauses_off = off.Checks.simp.Bmc.Engine.ss_clauses_emitted;
          jp_clauses_on = on.Checks.simp.Bmc.Engine.ss_clauses_emitted;
          jp_time_off_s = t_off;
          jp_time_on_s = t_on;
        })
      cases
  in
  Printf.printf "\noff vs on over the design x mutant matrix (%d cases):\n"
    (List.length matrix);
  Printf.printf "%-12s %-28s %10s %10s %7s %10s\n" "design" "case" "cl(off)" "cl(on)"
    "saved" "verdict";
  let log_sum = ref 0.0 and log_n = ref 0 in
  List.iter
    (fun r ->
      let mismatch = r.jp_verdict_off <> r.jp_verdict_on in
      if mismatch then incr verdict_mismatches;
      if r.jp_clauses_off > 0 && r.jp_clauses_on > 0 then begin
        log_sum :=
          !log_sum +. log (float_of_int r.jp_clauses_on /. float_of_int r.jp_clauses_off);
        incr log_n
      end;
      let saved =
        if r.jp_clauses_off > 0 then
          Printf.sprintf "%.0f%%"
            (100.0 *. (1.0 -. (float_of_int r.jp_clauses_on /. float_of_int r.jp_clauses_off)))
        else "-"
      in
      Printf.printf "%-12s %-28s %10d %10d %7s %10s%s\n%!" r.jp_design r.jp_case
        r.jp_clauses_off r.jp_clauses_on saved r.jp_verdict_on
        (if mismatch then
           Printf.sprintf "  VERDICT MISMATCH (off: %s)" r.jp_verdict_off
         else ""))
    matrix;
  json_simplify_rows := !json_simplify_rows @ matrix;
  if !log_n > 0 then begin
    let geo = 1.0 -. exp (!log_sum /. float_of_int !log_n) in
    json_simplify_geomean := geo;
    Printf.printf "\ngeo-mean clause reduction: %.1f%% over %d cases; verdict mismatches: %d\n"
      (100.0 *. geo) !log_n !verdict_mismatches
  end

(* ------------------------------------------------------------------ *)
(* F1: G-QED runtime vs unroll bound (scaling curves).                  *)

let f1 () =
  header "F1  G-QED runtime vs unroll bound (seconds; one series per design)";
  let designs = [ "accum"; "maxtrack"; "alu_pipe"; "mmio_engine" ] in
  let bounds = [ 2; 3; 4; 5; 6 ] in
  Printf.printf "%-6s" "bound";
  List.iter (Printf.printf " %12s") designs;
  Printf.printf "\n";
  (* All (bound, design) cells fan out at once; each cell's time is its own
     task wall-clock, so the grid is the same data the serial run prints. *)
  let cells = List.concat_map (fun b -> List.map (fun d -> (b, d)) designs) bounds in
  let timed =
    Par.map_timed ~jobs:!jobs
      (fun (bound, name) ->
        let e = Registry.find name in
        check_warm ~simplify:!pipeline Checks.Gqed e.Entry.design e.Entry.iface ~bound)
      cells
  in
  par_task_seconds :=
    !par_task_seconds +. List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 timed;
  let warm_any = ref false in
  List.iteri
    (fun bi bound ->
      Printf.printf "%-6d" bound;
      List.iteri
        (fun di _ ->
          let (_, warm), dt = List.nth timed ((bi * List.length designs) + di) in
          if warm then warm_any := true;
          Printf.printf " %11.3f%s" dt (if warm then "*" else " "))
        designs;
      Printf.printf "\n%!")
    bounds;
  if !warm_any then
    Printf.printf
      "(* = served warm from the --checkpoint journal; lookup time, not solve time)\n";
  List.iter2
    (fun (bound, name) ((report, warm), dt) ->
      json_solver_rows :=
        !json_solver_rows
        @ [
            {
              js_design = name;
              js_bound = bound;
              js_verdict = verdict_key report;
              js_time_s = dt;
              js_warm = warm;
              js_stats = report.Checks.sat_stats;
              js_cnf_vars = report.Checks.cnf_vars;
              js_cnf_clauses = report.Checks.cnf_clauses;
              js_simp = report.Checks.simp;
            };
          ])
    cells timed

(* ------------------------------------------------------------------ *)
(* F2: CRV detection rate vs budget, with the G-QED one-shot line.      *)

let f2 () =
  header "F2  Detection rate vs CRV budget, against one G-QED run";
  let cases =
    [
      (* easy bug: random simulation wins quickly *)
      ("accum/off_by_one", "accum", Mutation.Off_by_one);
      (* always-on interference: both find it *)
      ("accum/hidden_state", "accum", Mutation.Hidden_state);
      (* rare-trigger interference: the class that escapes regressions *)
      ("accum/rare_output", "accum", Mutation.Rare_output);
      ("maxtrack/rare_state", "maxtrack", Mutation.Rare_state);
      ("mmio/rare_output", "mmio_engine", Mutation.Rare_output);
      (* uniform bug: only the golden-model flow can see it *)
      ("seqdet/op_swap", "seqdet", Mutation.Op_swap);
    ]
  in
  let budgets = [ 1; 3; 10; 30; 100; 300 ] in
  let seeds = List.init 20 (fun i -> i + 1) in
  Printf.printf "%-20s" "mutant";
  List.iter (fun b -> Printf.printf " %7s" (Printf.sprintf "%dtx" b)) budgets;
  Printf.printf " %16s\n" "G-QED one-shot";
  par_map
    (fun (label, design_name, op) ->
      let e = Registry.find design_name in
      match
        List.find_map
          (fun (m, d) -> if m.Mutation.operator = op then Some d else None)
          (Mutation.mutants e.Entry.design)
      with
      | None -> None
      | Some mutant ->
          let curve = Crv.detection_curve ~design_override:mutant e ~budgets ~seeds in
          let report, dt =
            time (fun () -> check Checks.Gqed_flow mutant e.Entry.iface ~bound:e.Entry.rec_bound)
          in
          let one_shot =
            match report.Checks.verdict with
            | Checks.Pass _ -> "missed"
            | Checks.Fail _ -> "found"
            | Checks.Unknown _ -> "unknown"
          in
          Some (label, curve, one_shot, dt))
    cases
  |> List.iter (function
       | None -> ()
       | Some (label, curve, one_shot, dt) ->
           Printf.printf "%-20s" label;
           List.iter (fun (_, rate) -> Printf.printf " %6.0f%%" (100.0 *. rate)) curve;
           Printf.printf " %9s %5.1fs\n%!" one_shot dt);
  Printf.printf
    "\n(rare-trigger rows: the corruption needs a coincidence of hidden phase,\n\
     operand and state values; symbolic search constructs it in one query)\n"

(* ------------------------------------------------------------------ *)
(* F3: counterexample length, G-QED vs CRV cycles-to-detection.         *)

let f3 () =
  header "F3  Counterexample length: G-QED trace vs CRV cycles-to-detection";
  let rows = Lazy.force t2_rows in
  let geomean = function
    | [] -> nan
    | xs ->
        exp
          (List.fold_left (fun acc x -> acc +. log (float_of_int (max 1 x))) 0.0 xs
          /. float_of_int (List.length xs))
  in
  Printf.printf "%-12s %18s %18s %8s\n" "design" "G-QED cex (geo.)" "CRV cycles (geo.)"
    "ratio";
  let all_g = ref [] and all_c = ref [] in
  List.iter
    (fun row ->
      if row.r_gqed_cex <> [] && row.r_crv_cycles <> [] then begin
        all_g := row.r_gqed_cex @ !all_g;
        all_c := row.r_crv_cycles @ !all_c;
        let g = geomean row.r_gqed_cex and c = geomean row.r_crv_cycles in
        Printf.printf "%-12s %18.1f %18.1f %7.1fx\n" row.r_name g c (c /. g)
      end)
    rows;
  let g = geomean !all_g and c = geomean !all_c in
  Printf.printf "%-12s %18.1f %18.1f %7.1fx  (A-QED DAC'20 reports ~37x)\n" "OVERALL" g c
    (c /. g)

(* ------------------------------------------------------------------ *)
(* R-ROB1: robustness — fault injection, starved budgets, escalation     *)
(* recovery and the Par watchdog. See EXPERIMENTS.md.                    *)

(* A seeded stochastic solver fault hook: with probability [rate] per
   solver poll it fires resource exhaustion, external cancellation or
   allocation pressure. Deterministic in [seed]. *)
let rob_hook seed rate =
  let st = Random.State.make [| 0xb0b; seed |] in
  fun (_ : Sat.Solver.stats) ->
    if Random.State.float st 1.0 >= rate then None
    else
      match Random.State.int st 4 with
      | 0 -> Some (Sat.Solver.Fault_exhaust Sat.Solver.Out_of_conflicts)
      | 1 -> Some (Sat.Solver.Fault_exhaust Sat.Solver.Out_of_memory_budget)
      | 2 -> Some Sat.Solver.Fault_cancel
      | _ -> Some (Sat.Solver.Fault_alloc 4096)

let rob () =
  header "R-ROB1  Robustness: faults, starved budgets, escalation, watchdog";
  Printf.printf
    "Faults fire mid-solve (exhaustion / cancellation / allocation\n\
     pressure). A fault may only turn a verdict into unknown; a flip\n\
     between pass and fail fails the whole bench run.\n\n";
  let designs = [ "accum"; "maxtrack"; "seqdet" ] in
  let rates = [ 0.005; 0.02; 0.1 ] in
  let trials = 3 in
  Printf.printf "%-12s %6s %8s %9s %7s %12s\n" "design" "rate" "trials" "unknown" "flips"
    "escalation";
  List.iter
    (fun name ->
      let e = Registry.find name in
      let bound = e.Entry.rec_bound in
      let reference = Checks.gqed e.Entry.design e.Entry.iface ~bound in
      let ref_key = verdict_key reference in
      (* Escalation recovery: starve every query to a single conflict; the
         retry ladder must regrow the budget until the fault-free verdict
         comes back. *)
      let starved = Bmc.limits ~budget:(Sat.Solver.budget ~conflicts:1 ()) () in
      let recovered_report =
        Checks.run_escalating
          ~policy:{ Bmc.Escalate.default_policy with max_attempts = 8; growth = 8.0 }
          ~limits:starved Checks.Gqed e.Entry.design e.Entry.iface ~bound
      in
      let recovered = verdict_key recovered_report = ref_key in
      (match recovered_report.Checks.verdict with
      | Checks.Unknown _ -> () (* stayed undecided: not a flip, just reported *)
      | Checks.Pass _ | Checks.Fail _ -> if not recovered then incr rob_flips);
      List.iter
        (fun rate ->
          let outcomes =
            par_map
              (fun trial ->
                let limits =
                  Bmc.limits ~fault:(rob_hook (Hashtbl.hash (name, rate, trial)) rate) ()
                in
                Checks.run ~limits Checks.Gqed e.Entry.design e.Entry.iface ~bound)
              (List.init trials (fun i -> i))
          in
          let unknown =
            List.length
              (List.filter
                 (fun r ->
                   match r.Checks.verdict with
                   | Checks.Unknown _ -> true
                   | Checks.Pass _ | Checks.Fail _ -> false)
                 outcomes)
          in
          let flips =
            List.length
              (List.filter
                 (fun r ->
                   match r.Checks.verdict with
                   | Checks.Unknown _ -> false
                   | Checks.Pass _ | Checks.Fail _ -> verdict_key r <> ref_key)
                 outcomes)
          in
          rob_flips := !rob_flips + flips;
          Printf.printf "%-12s %6.3f %8d %9d %7d %12s%s\n%!" name rate trials unknown flips
            (if recovered then "recovered"
             else "gave-up (" ^ short_verdict recovered_report ^ ")")
            (if flips > 0 then "  VERDICT FLIP" else "");
          json_rob_rows :=
            !json_rob_rows
            @ [
                {
                  jr_design = name;
                  jr_rate = rate;
                  jr_trials = trials;
                  jr_unknown = unknown;
                  jr_flips = flips;
                  jr_recovered = recovered;
                };
              ])
        rates)
    designs;
  (* Watchdog: a deliberately oversized query runs next to a small one under
     a per-task deadline. The fan-out must not block on the big query — the
     watchdog cancels it, its row comes back cancelled, and the sibling's
     verdict is unaffected. *)
  Printf.printf "\nwatchdog (per-task deadline 0.3s, 2 tasks):\n";
  let big = Registry.find "mmio_engine" in
  let small = Registry.find "hamming74" in
  let t0 = Unix.gettimeofday () in
  let results =
    Par.map_governed ~jobs:2 ~deadline:0.3
      (fun token (e, bound) ->
        Checks.gqed ~limits:(Bmc.limits ~cancel:token ()) e.Entry.design e.Entry.iface
          ~bound)
      [ (big, 3 * big.Entry.rec_bound); (small, small.Entry.rec_bound) ]
  in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter2
    (fun (e, bound) (result, dt) ->
      match result with
      | Ok report ->
          Printf.printf "  %-12s bound %-3d -> %-28s %6.2fs\n" e.Entry.name bound
            (verdict_key report) dt
      | Error exn ->
          Printf.printf "  %-12s bound %-3d -> raised %s\n" e.Entry.name bound
            (Printexc.to_string exn))
    [ (big, 3 * big.Entry.rec_bound); (small, small.Entry.rec_bound) ]
    results;
  (match results with
  | [ (Ok r_big, _); (Ok r_small, _) ] ->
      (match r_big.Checks.verdict with
      | Checks.Unknown _ -> ()
      | Checks.Pass _ | Checks.Fail _ ->
          (* Finishing before the deadline is legal; it just means the
             machine is fast enough that the demo did not demonstrate. *)
          Printf.printf "  (oversized query finished before the deadline)\n");
      (match r_small.Checks.verdict with
      | Checks.Pass _ -> ()
      | Checks.Fail _ | Checks.Unknown _ ->
          incr rob_flips;
          Printf.printf "  SIBLING AFFECTED: small query did not pass\n")
  | _ -> ());
  Printf.printf "  fan-out wall clock: %.2fs (a hung query no longer blocks the run)\n" wall

(* ------------------------------------------------------------------ *)
(* P1: clause-sharing portfolio SAT. Every cell of a design x mutant     *)
(* matrix is checked twice — single-solver lane vs portfolio lane — and  *)
(* the verdicts must agree exactly. Cells run sequentially so the        *)
(* per-cell wall-clock comparison is not perturbed by sibling cells.     *)

let p1 () =
  header "P1  Clause-sharing portfolio SAT: diversified workers race per query";
  let requested = !portfolio_width in
  (* The portfolio is p1's only parallelism (cells run sequentially), so
     the jobs x portfolio product reduces to the portfolio width here. *)
  let effective, clamped = Par.clamp_inner ~jobs:1 ~inner:requested in
  json_portfolio_effective := effective;
  if clamped then
    Printf.printf
      "bench: warning: --portfolio %d exceeds %d available core(s); portfolio clamped \
       to %d\n"
      requested (Par.default_jobs ()) effective;
  Printf.printf
    "Each SAT query in the portfolio lane races %d diversified CDCL worker(s)%s.\n\
     Verdicts are compared cell-by-cell against the single-solver lane; any\n\
     flip fails the whole bench run (exit 1).\n\n"
    effective
    (if !portfolio_share && effective > 1 then ", sharing learnt clauses"
     else ", no clause sharing");
  let pconfig = Sat.Portfolio.config ~workers:effective ~share:!portfolio_share () in
  let single_limits = bench_limits () in
  let portfolio_limits = { single_limits with Bmc.l_portfolio = Some pconfig } in
  (* Default subset: the hardest suite members (deep recommended bounds or
     wide state), where per-query solver time dominates the check. *)
  let default_names =
    [ "accum"; "maxtrack"; "seqdet"; "hamming74"; "graycodec"; "movavg4" ]
  in
  let entries =
    match !design_filter with
    | Some _ -> s1_entries ()
    | None -> List.filter (fun e -> List.mem e.Entry.name default_names) Registry.all
  in
  Printf.printf "%-12s %-18s %-16s %-16s %7s %7s %7s %9s %9s\n" "design" "case" "single"
    "portfolio" "t1(s)" "tN(s)" "speedup" "exported" "imported";
  let speedups = ref [] in
  List.iter
    (fun e ->
      let bound = e.Entry.rec_bound in
      let cells =
        ("correct", e.Entry.design)
        :: List.map
             (fun (m, mutant) ->
               ( Printf.sprintf "%s:%s"
                   (Mutation.operator_to_string m.Mutation.operator)
                   m.Mutation.target,
                 mutant ))
             (mutant_suite e)
      in
      List.iter
        (fun (label, design) ->
          let single, t_single =
            time (fun () ->
                record
                  (Checks.run ~limits:single_limits Checks.Gqed design e.Entry.iface
                     ~bound))
          in
          let portfolio, t_portfolio =
            time (fun () ->
                record
                  (Checks.run ~limits:portfolio_limits Checks.Gqed design e.Entry.iface
                     ~bound))
          in
          let vk_single = verdict_key single in
          let vk_portfolio = verdict_key portfolio in
          let flip = vk_single <> vk_portfolio in
          if flip then incr portfolio_flips;
          (* Only the correct cells feed the speedup figure: their queries
             are the all-UNSAT deepening ladder, the hard subset. *)
          if label = "correct" && t_portfolio > 0.0 then
            speedups := (t_single /. t_portfolio) :: !speedups;
          let st = portfolio.Checks.sat_stats in
          Printf.printf "%-12s %-18s %-16s %-16s %7.2f %7.2f %7.2f %9d %9d%s\n%!"
            e.Entry.name label vk_single vk_portfolio t_single t_portfolio
            (if t_portfolio > 0.0 then t_single /. t_portfolio else Float.nan)
            st.Sat.Solver.clauses_exported st.Sat.Solver.clauses_imported
            (if flip then "  VERDICT FLIP" else "");
          json_portfolio_rows :=
            !json_portfolio_rows
            @ [
                {
                  jpf_design = e.Entry.name;
                  jpf_case = label;
                  jpf_verdict_single = vk_single;
                  jpf_verdict_portfolio = vk_portfolio;
                  jpf_time_single_s = t_single;
                  jpf_time_portfolio_s = t_portfolio;
                  jpf_exported = st.Sat.Solver.clauses_exported;
                  jpf_imported = st.Sat.Solver.clauses_imported;
                };
              ])
        cells)
    entries;
  (match !speedups with
  | [] -> ()
  | ss ->
      let geo =
        exp (List.fold_left (fun a s -> a +. log s) 0.0 ss /. float_of_int (List.length ss))
      in
      json_portfolio_geomean := geo;
      Printf.printf
        "\nhard-query (correct-cell) wall-clock speedup, geo-mean over %d designs: %.2fx\n"
        (List.length ss) geo;
      if effective > 1 && geo <= 1.0 then
        Printf.printf
          "  note: portfolio no faster than single-solver on this machine/run\n"
      else if effective = 1 then
        Printf.printf
          "  note: 1 effective worker (requested %d) — speedup comparison measures \
           portfolio overhead only\n"
          requested);
  if !portfolio_flips = 0 then
    Printf.printf "portfolio vs single verdicts: all %d cells agree\n"
      (List.length !json_portfolio_rows)

(* ------------------------------------------------------------------ *)
(* OBS: tracing is verdict-invisible and emitted traces are well-formed. *)

let obs_exp () =
  header "OBS  Observability: tracing is verdict-invisible, traces well-formed";
  Printf.printf
    "Each design is checked once with the Obs layer off and once with span\n\
     tracing on. The verdicts must match exactly and the emitted trace must\n\
     pass the structural well-formedness checker; any disagreement fails the\n\
     whole bench run (exit 1).\n\n";
  let was_on = Obs.on () in
  let names = [ "alu_pipe"; "popcount"; "graycodec" ] in
  let entries = List.filter (fun e -> List.mem e.Entry.name names) Registry.all in
  Printf.printf "%-12s %-12s %-12s %8s %8s %10s\n" "design" "untraced" "traced"
    "t_off(s)" "t_on(s)" "trace";
  List.iter
    (fun e ->
      let bound = e.Entry.rec_bound in
      let run1 () =
        record
          (Checks.run ~limits:(bench_limits ()) Checks.Gqed e.Entry.design
             e.Entry.iface ~bound)
      in
      Obs.disable ();
      let plain, t_off = time run1 in
      Obs.Trace.reset ();
      Obs.enable ();
      let traced, t_on = time run1 in
      let events = Obs.Trace.events () in
      if not was_on then Obs.disable ();
      let trace_cell =
        match Obs.Trace.check events with
        | _ when events = [] ->
            incr obs_malformed;
            "EMPTY"
        | Ok () -> Printf.sprintf "%d ok" (List.length events)
        | Error _ ->
            incr obs_malformed;
            "MALFORMED"
      in
      obs_trace_events := !obs_trace_events + List.length events;
      obs_trace_wellformed :=
        Some
          (Option.value !obs_trace_wellformed ~default:true
          && trace_cell <> "MALFORMED" && trace_cell <> "EMPTY");
      let vk_plain = verdict_key plain and vk_traced = verdict_key traced in
      let flip = vk_plain <> vk_traced in
      if flip then incr obs_flips;
      Printf.printf "%-12s %-12s %-12s %8.2f %8.2f %10s%s\n%!" e.Entry.name vk_plain
        vk_traced t_off t_on trace_cell
        (if flip then "  VERDICT FLIP" else ""))
    entries;
  if !obs_flips = 0 && !obs_malformed = 0 then
    Printf.printf "\ntraced vs untraced verdicts: all %d designs agree, traces well-formed\n"
      (List.length entries)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure kernel.    *)

let micro () =
  header "Micro-benchmarks (Bechamel): per-experiment computational kernels";
  let open Bechamel in
  let accum = Registry.find "accum" in
  let mutant =
    List.find_map
      (fun (m, d) -> if m.Mutation.operator = Mutation.Off_by_one then Some d else None)
      (Mutation.mutants accum.Entry.design)
    |> Option.get
  in
  let sim_inputs =
    let rand = Random.State.make [| 9 |] in
    List.init 200 (fun _ ->
        Entry.operand_valuation accum ~valid:true (accum.Entry.sample_operand rand))
  in
  let tests =
    [
      Test.make ~name:"t1.design_stats"
        (Staged.stage (fun () -> ignore (Rtl.stats accum.Entry.design)));
      Test.make ~name:"t2.gqed_buggy_mutant"
        (Staged.stage (fun () -> ignore (Checks.gqed mutant accum.Entry.iface ~bound:4)));
      Test.make ~name:"t3.gqed_pass_bound3"
        (Staged.stage (fun () ->
             ignore (Checks.gqed accum.Entry.design accum.Entry.iface ~bound:3)));
      Test.make ~name:"t4.productivity_model"
        (Staged.stage (fun () -> ignore (Productivity.improvement accum)));
      Test.make ~name:"t5.transaction_table"
        (Staged.stage (fun () ->
             ignore
               (Theory.transaction_table accum.Entry.design accum.Entry.iface
                  ~alphabet:
                    (Theory.default_alphabet ~operand_values:[ 0; 1 ] accum.Entry.design
                       accum.Entry.iface)
                  ~depth:3)));
      Test.make ~name:"a1.gqed_output_only_bound3"
        (Staged.stage (fun () ->
             ignore (Checks.gqed_output_only accum.Entry.design accum.Entry.iface ~bound:3)));
      Test.make ~name:"a2.bmc_safety_depth6"
        (Staged.stage (fun () ->
             ignore
               (Bmc.check_safety ~design:accum.Entry.design
                  ~invariant:(Expr.ne (Expr.var "acc" 4) (Expr.const_int ~width:4 15))
                  ~depth:6 ())));
      Test.make ~name:"f1.simulate_200_cycles"
        (Staged.stage (fun () -> ignore (Rtl.simulate accum.Entry.design sim_inputs)));
      Test.make ~name:"f2.crv_200tx"
        (Staged.stage (fun () ->
             ignore
               (Crv.run accum { Crv.seed = 1; max_transactions = 200; idle_prob = 0.2 })));
      Test.make ~name:"f3.aqed_fc_bound4"
        (Staged.stage (fun () -> ignore (Checks.aqed_fc mutant accum.Entry.iface ~bound:4)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"kernel" tests) in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let est =
          match Analyze.OLS.estimates result with Some (e :: _) -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-36s %16s\n" "kernel" "time/run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-36s %16s\n" name human)
    rows

(* ------------------------------------------------------------------ *)
(* C1: cross-query reuse — cold vs warm mutant-matrix cost.             *)

(* Default design subset: combined mutant matrices solve in seconds yet
   cover proved verdicts and all three G-FC failure kinds (the same set
   the matrix regression test re-solves). --designs overrides. *)
let c1_default = [ "hamming74"; "graycodec"; "seqdet"; "rle"; "maxtrack" ]

let c1 () =
  header "C1  Cross-query reuse: cold vs warm mutant-matrix cost";
  let wanted = match !design_filter with Some ds -> ds | None -> c1_default in
  let entries = List.filter (fun e -> List.mem e.Entry.name wanted) Registry.all in
  let tasks =
    Array.of_list
      (List.concat_map
         (fun e ->
           (e, "correct", e.Entry.design)
           :: List.map
                (fun (m, mutant) -> (e, m.Mutation.id, mutant))
                (mutant_suite e))
         entries)
  in
  (* Each lane solves every (design, case) cell twice — a re-verification
     sweep in miniature. The base lane re-solves cold both times; the
     reuse lane shares one context, so its first pass populates the
     family clause pools and the memo table and its second pass is
     answered from the memo. Per-cell times are wall-clock inside the
     task, so --jobs changes neither lane's task-sum. *)
  let run_pass ctx =
    Array.of_list
      (par_map
         (fun (e, _case, d) ->
           let r, dt =
             time (fun () ->
                 check ?reuse:ctx Checks.Gqed d e.Entry.iface ~bound:e.Entry.rec_bound)
           in
           (verdict_key r, dt))
         (Array.to_list tasks))
  in
  let base1 = run_pass None in
  let base2 = run_pass None in
  let reuse_passes =
    if not !reuse_on then None
    else begin
      let ctx = Bmc.Reuse.create () in
      let r1 = run_pass (Some ctx) in
      let r2 = run_pass (Some ctx) in
      json_reuse_stats := Some (Bmc.Reuse.stats ctx);
      Some (r1, r2)
    end
  in
  Printf.printf "%-12s %6s %10s %10s %8s %6s\n" "design" "cases" "base(s)" "reuse(s)"
    "ratio" "flips";
  let rows =
    List.map
      (fun e ->
        let cases = ref 0 and base_s = ref 0.0 and reuse_s = ref 0.0 in
        let flips = ref 0 in
        Array.iteri
          (fun i (e', _case, _d) ->
            if e' == e then begin
              incr cases;
              let vb1, db1 = base1.(i) and vb2, db2 = base2.(i) in
              base_s := !base_s +. db1 +. db2;
              (match reuse_passes with
              | None -> if vb2 <> vb1 then incr flips
              | Some (r1, r2) ->
                  let vr1, dr1 = r1.(i) and vr2, dr2 = r2.(i) in
                  reuse_s := !reuse_s +. dr1 +. dr2;
                  if vb2 <> vb1 || vr1 <> vb1 || vr2 <> vb1 then incr flips)
            end)
          tasks;
        let reuse_s = if reuse_passes = None then nan else !reuse_s in
        reuse_flips := !reuse_flips + !flips;
        let ratio =
          Report.geo_mean_ratio [ (!base_s, reuse_s) ]
          (* per-design ratio; nan reuse_s filters out *)
        in
        Printf.printf "%-12s %6d %10.3f %10s %8s %6d\n" e.Entry.name !cases !base_s
          (if Float.is_nan reuse_s then "-" else Printf.sprintf "%.3f" reuse_s)
          (match ratio with None -> "-" | Some x -> Printf.sprintf "%.2fx" x)
          !flips;
        {
          jx_design = e.Entry.name;
          jx_cases = !cases;
          jx_base_s = !base_s;
          jx_reuse_s = reuse_s;
          jx_flips = !flips;
        })
      entries
  in
  json_reuse_rows := rows;
  let geo =
    Report.geo_mean_ratio (List.map (fun r -> (r.jx_base_s, r.jx_reuse_s)) rows)
  in
  (match geo with
  | Some g ->
      json_reuse_geomean := g;
      Printf.printf
        "\ncold-vs-warm task-sum reduction, geo-mean over %d designs: %.2fx\n"
        (List.length rows) g
  | None ->
      Printf.printf "\nreuse lane skipped (--no-reuse): no reduction to report\n");
  (match !json_reuse_stats with
  | Some s ->
      Printf.printf
        "reuse: %d/%d memo hits, %d lemmas published (%d dropped), %d imported, \
         %d/%d cones shared\n"
        s.Bmc.Reuse.r_memo_hits
        (s.Bmc.Reuse.r_memo_hits + s.Bmc.Reuse.r_memo_misses)
        s.Bmc.Reuse.r_published s.Bmc.Reuse.r_pub_dropped s.Bmc.Reuse.r_imported
        s.Bmc.Reuse.r_cone_shared
        (s.Bmc.Reuse.r_cone_shared + s.Bmc.Reuse.r_cone_new)
  | None -> ());
  if !reuse_flips > 0 then
    Printf.printf "WARNING: %d verdict flip(s) between the cold and reuse lanes\n"
      !reuse_flips

(* ------------------------------------------------------------------ *)
(* R2: crash-safe campaigns — a journaled run killed at a random record
   and resumed must reproduce the uninterrupted verdict matrix
   bit-for-bit, journal I/O faults must never leak into a verdict, and
   the supervisor must restart crashing workers without taking the
   campaign down. *)

let r2_default = [ "accum"; "hamming74"; "graycodec" ]

let r2 () =
  header "R2  Crash-safe campaigns: kill/resume equivalence + supervised restarts";
  Printf.printf
    "A (design x case) G-QED campaign is journaled to a write-ahead log,\n\
     killed at a random record (torn tail included) and resumed; the\n\
     resumed matrix must match the uninterrupted one cell-for-cell. A\n\
     second lane journals under injected I/O faults (torn / short write /\n\
     ENOSPC) — write errors degrade durability, never verdicts. Any\n\
     disagreement fails the whole bench run (exit 1).\n\n";
  let wanted = match !design_filter with Some ds -> ds | None -> r2_default in
  let entries = List.filter (fun e -> List.mem e.Entry.name wanted) Registry.all in
  let cells =
    List.concat_map
      (fun e ->
        ("correct", e, e.Entry.design)
        :: List.map
             (fun (m, mutant) ->
               ( Printf.sprintf "%s:%s"
                   (Mutation.operator_to_string m.Mutation.operator)
                   m.Mutation.target,
                 e,
                 mutant ))
             (mutant_suite e))
      entries
  in
  let limits = bench_limits () in
  (* One pass over the cells through a journal at [path]: supervised
     fan-out, decided journal hits are skipped on resume. Returns the
     verdict matrix (input order) and the campaign stats. *)
  let run_campaign ?fault ~resume path =
    match Persist.Campaign.start ?fault ~resume ~force:false path with
    | Error msg -> failwith ("r2: " ^ msg)
    | Ok c ->
        let outcomes =
          Par.Supervise.supervise ~jobs:!jobs
            (fun _token (_label, e, design) ->
              let key =
                Checks.campaign_key Checks.Gqed design e.Entry.iface
                  ~bound:e.Entry.rec_bound
              in
              match
                Option.bind (Persist.Campaign.find_decided c key) Checks.decode_report
              with
              | Some r -> r
              | None ->
                  let r, dt =
                    time (fun () ->
                        record
                          (Checks.run ~limits Checks.Gqed design e.Entry.iface
                             ~bound:e.Entry.rec_bound))
                  in
                  Persist.Campaign.record c ~seconds:dt
                    ~decided:(Checks.report_decided r) ~key
                    ~payload:(Checks.encode_report r);
                  r)
            cells
        in
        let stats = Persist.Campaign.stats c in
        Persist.Campaign.close c;
        let verdicts =
          List.map
            (fun o ->
              match o.Par.Supervise.s_result with
              | Ok r -> verdict_key r
              | Error cls -> "gave-up:" ^ Par.Supervise.class_to_string cls)
            outcomes
        in
        (verdicts, stats)
  in
  let tmp_journal tag =
    let f = Filename.temp_file ("gqed-r2-" ^ tag) ".jrnl" in
    Sys.remove f;
    f
  in
  (* Lane 1: uninterrupted journaled run — the reference matrix. *)
  let j_kill = tmp_journal "kill" in
  let full, stats_full = run_campaign ~resume:false j_kill in
  let n_records = stats_full.Persist.Campaign.c_appended in
  json_campaign_records := n_records;
  (* Kill: keep a seeded-random prefix of the journal plus a torn partial
     record — the exact on-disk state a SIGKILL mid-append leaves. *)
  let rand = Random.State.make [| 0x9e2; 0xd15c; !seed; List.length cells |] in
  let kill_at = if n_records <= 1 then 0 else Random.State.int rand n_records in
  json_campaign_kill_at := kill_at;
  Persist.Journal.chop ~torn_bytes:9 ~keep:kill_at j_kill;
  let resumed, stats_res = run_campaign ~resume:true j_kill in
  json_campaign_skipped := stats_res.Persist.Campaign.c_hits;
  json_campaign_rerun := stats_res.Persist.Campaign.c_appended;
  json_campaign_recovered_bytes := stats_res.Persist.Campaign.c_recovered_bytes;
  Printf.printf "%-12s %-18s %-16s %-16s\n" "design" "case" "full" "resumed";
  List.iter2
    (fun (label, e, _) (vf, vr) ->
      let flip = vf <> vr in
      if flip then incr campaign_flips;
      Printf.printf "%-12s %-18s %-16s %-16s%s\n%!" e.Entry.name label vf vr
        (if flip then "  VERDICT FLIP" else "");
      json_campaign_rows :=
        !json_campaign_rows
        @ [ { jk_design = e.Entry.name; jk_case = label; jk_full = vf; jk_resumed = vr } ])
    cells
    (List.combine full resumed);
  Printf.printf
    "\nkilled at record %d/%d (+9 torn bytes): %d skipped from the journal, %d re-run, \
     %d corrupt tail byte(s) dropped\n"
    kill_at n_records stats_res.Persist.Campaign.c_hits
    stats_res.Persist.Campaign.c_appended
    stats_res.Persist.Campaign.c_recovered_bytes;
  (* Lane 2: journal under injected I/O faults — every third append is
     torn, every seventh fails short, every eleventh hits ENOSPC. The
     verdict matrix must not notice; then resume from the fault-riddled
     journal and it still must not notice. *)
  let fault i =
    if i mod 11 = 7 then Some Persist.Enospc
    else if i mod 7 = 3 then Some (Persist.Short_write 5)
    else if i mod 3 = 1 then Some (Persist.Torn 11)
    else None
  in
  let j_fault = tmp_journal "fault" in
  let faulty, stats_faulty = run_campaign ~fault ~resume:false j_fault in
  json_campaign_write_errors := stats_faulty.Persist.Campaign.c_write_errors;
  let count_flips a b =
    List.fold_left2 (fun n x y -> if x <> y then n + 1 else n) 0 a b
  in
  let fault_flips = count_flips full faulty in
  let resumed_faulty, _ = run_campaign ~resume:true j_fault in
  let fault_resume_flips = count_flips full resumed_faulty in
  campaign_flips := !campaign_flips + fault_flips + fault_resume_flips;
  Printf.printf
    "I/O-fault lane: %d append(s) lost to injected faults, %d flip(s) while faulting, \
     %d flip(s) after resuming the damaged journal\n"
    stats_faulty.Persist.Campaign.c_write_errors fault_flips fault_resume_flips;
  (* Lane 3: supervision — a worker that crashes twice must be restarted
     into success, a worker that always crashes must degrade to a typed
     give-up without aborting its siblings. Serial so the attempt counts
     are deterministic. *)
  let attempt_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let demo = [ ("steady", 0); ("flaky", 2); ("doomed", max_int) ] in
  let outcomes =
    Par.Supervise.supervise ~jobs:1
      (fun _token (name, crashes) ->
        let a = Option.value ~default:0 (Hashtbl.find_opt attempt_counts name) in
        Hashtbl.replace attempt_counts name (a + 1);
        if a < crashes then failwith (name ^ ": injected crash");
        name)
      demo
  in
  let restarts = ref 0 and gave_up = ref 0 in
  List.iter2
    (fun (name, crashes) o ->
      restarts := !restarts + o.Par.Supervise.s_attempts - 1;
      let ok =
        match o.Par.Supervise.s_result with
        | Ok n -> n = name && crashes < o.Par.Supervise.s_attempts
        | Error (Par.Supervise.Crash _) ->
            incr gave_up;
            crashes = max_int
        | Error _ -> false
      in
      Printf.printf "supervise: %-8s %s after %d attempt(s)\n" name
        (match o.Par.Supervise.s_result with
        | Ok _ -> "succeeded"
        | Error cls -> "gave up (" ^ Par.Supervise.class_to_string cls ^ ")")
        o.Par.Supervise.s_attempts;
      (* A misbehaving supervisor is a campaign-correctness bug: gate it
         like a flip. *)
      if not ok then incr campaign_flips)
    demo outcomes;
  json_campaign_restarts := !restarts;
  json_campaign_gave_up := !gave_up;
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ j_kill; j_fault ];
  if !campaign_flips = 0 then
    Printf.printf
      "kill/resume, fault and supervision lanes: all %d cells reproduce the \
       uninterrupted matrix\n"
      (List.length cells)

(* ------------------------------------------------------------------ *)
(* D1: distributed sharded campaigns — the same campaign cells solved    *)
(* serially in-process and across N worker processes journaling to       *)
(* per-worker shards, flip-gated, plus a kill/resume lane and a          *)
(* supervised-restart lane. Workers are this executable re-exec'd (see   *)
(* lib/dist/DESIGN.md), so the solver rebuilds its key -> task table     *)
(* from the design names carried in [arg] alone.                         *)

(* Default subset: combined mutant matrices solve in seconds yet leave
   enough per-cell work for the process fan-out to amortize its spawn
   cost (same set as c1). --designs overrides. *)
let dist_default = [ "hamming74"; "graycodec"; "seqdet"; "rle"; "maxtrack" ]

let dist_cells e =
  let bound = e.Entry.rec_bound in
  let cell d =
    {
      Dist.cell_key = Checks.campaign_key Checks.Gqed d e.Entry.iface ~bound;
      cell_hint = Checks.campaign_hint d ~bound;
    }
  in
  cell e.Entry.design :: List.map (fun (_m, mutant) -> cell mutant) (mutant_suite e)

let dist_tables : (string, (string, Rtl.design * Qed.Iface.t * int) Hashtbl.t) Hashtbl.t =
  Hashtbl.create 4

(* arg = comma-separated registry names. The table is deterministic from
   them (registry designs plus the harness's shared mutant suites), so a
   worker process reconstructs exactly the coordinator's key space. *)
let dist_solver ~arg key =
  let table =
    match Hashtbl.find_opt dist_tables arg with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 64 in
        List.iter
          (fun name ->
            let e = Registry.find name in
            let bound = e.Entry.rec_bound in
            List.iter
              (fun d ->
                Hashtbl.replace t
                  (Checks.campaign_key Checks.Gqed d e.Entry.iface ~bound)
                  (d, e.Entry.iface, bound))
              (e.Entry.design :: List.map snd (mutant_suite e)))
          (String.split_on_char ',' arg);
        Hashtbl.add dist_tables arg t;
        t
  in
  match Hashtbl.find_opt table key with
  | None -> failwith ("bench dist worker: unknown cell key " ^ key)
  | Some (d, iface, bound) ->
      let r = Checks.run Checks.Gqed d iface ~bound in
      (Checks.report_decided r, Checks.encode_report r)

let () = Dist.register "bench-campaign" dist_solver

(* Payload bytes embed wall-clock solver stats, so lane equality is over
   decoded verdicts, exactly what the tables print. *)
let dist_verdict r =
  if r.Dist.r_payload = "" then "<no payload>"
  else
    match Checks.decode_report r.Dist.r_payload with
    | Some rep -> verdict_key rep
    | None -> "<undecodable>"

let dist_exp () =
  header "D1  Distributed campaigns: serial vs N-worker-process matrix";
  let wanted = match !design_filter with Some ds -> ds | None -> dist_default in
  let entries = List.filter (fun e -> List.mem e.Entry.name wanted) Registry.all in
  let workers =
    if !dist_workers > 0 then !dist_workers else max 2 (min 4 (Par.default_jobs ()))
  in
  json_dist_workers := workers;
  let policy = dist_policy () in
  Printf.printf
    "The combined campaign over %d design(s) is solved by the same\n\
     registered solver twice per trial: serially in-process (workers=1)\n\
     and sharded across %d worker processes pulling batches of %d\n\
     hardest-first, each journaling to its own shard. The merged matrices\n\
     must agree cell-for-cell; any flip fails the whole bench run\n\
     (exit 1). A kill lane then SIGKILLs a worker mid-campaign and\n\
     resumes from the leftover shards.\n\n"
    (List.length entries) workers !dist_batch;
  let tmp tag =
    let f = Filename.temp_file ("gqed-dist-" ^ tag) ".jrnl" in
    Sys.remove f;
    f
  in
  let sweep path =
    List.iter
      (fun f -> try Sys.remove f with Sys_error _ -> ())
      (path :: List.init 16 (Dist.worker_journal path))
  in
  let run_lane ?kill ~workers ~journal ~arg ~resume cells =
    match
      Dist.run ~workers ~batch:!dist_batch ~policy ?kill ~resume ~force:false
        ~journal ~solver:"bench-campaign" ~arg cells
    with
    | Ok (rows, st) -> (rows, st)
    | Error msg -> failwith ("dist: " ^ msg)
  in
  let per_design = List.map (fun e -> (e, dist_cells e)) entries in
  let all_cells = List.concat_map snd per_design in
  let all_arg = String.concat "," (List.map (fun e -> e.Entry.name) entries) in
  let count_flips a b =
    List.fold_left2
      (fun n x y -> if dist_verdict x <> dist_verdict y then n + 1 else n)
      0 a b
  in
  (* Throughput is measured on the combined campaign, where cross-design
     parallelism exists — a single design's matrix is usually dominated
     by its one hard all-UNSAT "correct" cell, which no amount of
     sharding can split. Two trials feed the geo-mean. *)
  let trials = 2 in
  let pairs = ref [] in
  let serial_rows = ref [] and dist_rows = ref [] in
  for trial = 1 to trials do
    let j1 = tmp "serial" and jn = tmp "par" in
    let (rows1, _), t1 =
      time (fun () -> run_lane ~workers:1 ~journal:j1 ~arg:all_arg ~resume:false all_cells)
    in
    let (rowsn, stn), tn =
      time (fun () -> run_lane ~workers ~journal:jn ~arg:all_arg ~resume:false all_cells)
    in
    sweep j1;
    sweep jn;
    json_dist_restarts := !json_dist_restarts + stn.Dist.d_restarts;
    let flips = count_flips rows1 rowsn in
    dist_flips := !dist_flips + flips;
    if t1 > 0.0 && tn > 0.0 then pairs := (t1, tn) :: !pairs;
    Printf.printf "trial %d: %d cells — serial %.3fs, %d workers %.3fs (%s), %d flip(s)%s\n%!"
      trial (List.length all_cells) t1 workers tn
      (if tn > 0.0 then Printf.sprintf "%.2fx" (t1 /. tn) else "-")
      flips
      (if flips > 0 then "  VERDICT FLIP" else "");
    if trial = 1 then begin
      serial_rows := rows1;
      dist_rows := rowsn
    end
  done;
  (* Per-design matrix from trial 1. Times are sums of the journaled
     per-cell solve seconds (task-sums), so a design's row is not
     perturbed by which lane happened to co-schedule a sibling design. *)
  Printf.printf "\n%-12s %6s %14s %14s %6s\n" "design" "cells" "serial-sum(s)"
    "dist-sum(s)" "flips";
  let idx = ref 0 in
  List.iter
    (fun (e, cells) ->
      let n = List.length cells in
      let slice rows = List.filteri (fun i _ -> i >= !idx && i < !idx + n) rows in
      let s1 = slice !serial_rows and sn = slice !dist_rows in
      let sum rows = List.fold_left (fun a r -> a +. r.Dist.r_seconds) 0.0 rows in
      (* already counted into dist_flips by the trial loop *)
      let flips = count_flips s1 sn in
      Printf.printf "%-12s %6d %14.3f %14.3f %6d\n%!" e.Entry.name n (sum s1) (sum sn)
        flips;
      json_dist_rows :=
        !json_dist_rows
        @ [
            {
              jd_design = e.Entry.name;
              jd_cells = n;
              jd_serial_s = sum s1;
              jd_dist_s = sum sn;
              jd_flips = flips;
            };
          ];
      idx := !idx + n)
    per_design;
  (match Report.geo_mean_ratio !pairs with
  | Some g ->
      json_dist_geomean := g;
      Printf.printf
        "\nserial-vs-%d-worker wall-clock speedup, geo-mean over %d trial(s): %.2fx\n"
        workers (List.length !pairs) g;
      if g <= 1.0 then
        if Par.default_jobs () <= 1 then
          Printf.printf
            "  note: 1 core available — the fan-out can only measure its own \
             overhead here (>1x needs >=2 cores)\n"
        else
          Printf.printf
            "  note: worker processes no faster than in-process on this machine/run\n"
  | None -> ());
  (* Kill/resume lane over the whole cell set: SIGKILL one worker
     mid-campaign (`Abort also downs its siblings, the hard variant),
     then resume — leftover shards merge first, journaled Unknowns
     re-solve, and the matrix must match the serial reference. *)
  let reference = List.map dist_verdict !serial_rows in
  let jk = tmp "kill" in
  let rand = Random.State.make [| 0xd157; !seed |] in
  let kill =
    {
      Dist.k_worker = Random.State.int rand workers;
      k_after = 1 + Random.State.int rand (max 1 (min 6 (List.length all_cells - 1)));
      k_mode = `Abort;
    }
  in
  let killed =
    match
      Dist.run ~workers ~batch:!dist_batch ~policy ~kill ~resume:false ~force:false
        ~journal:jk ~solver:"bench-campaign" ~arg:all_arg all_cells
    with
    | Error _ -> true
    | Ok _ -> false (* campaign finished before the kill point: still fine *)
  in
  json_dist_killed := killed;
  let rows_r, st_r = run_lane ~workers ~journal:jk ~arg:all_arg ~resume:true all_cells in
  sweep jk;
  let resume_flips =
    List.fold_left2
      (fun n v r -> if v <> dist_verdict r then n + 1 else n)
      0 reference rows_r
  in
  dist_flips := !dist_flips + resume_flips;
  json_dist_resume_flips := resume_flips;
  json_dist_resume_skipped := st_r.Dist.d_skipped;
  json_dist_resume_merged := st_r.Dist.d_merged;
  Printf.printf
    "kill/resume lane: worker %d SIGKILLed after %d ack(s)%s; resume merged %d \
     shard record(s), skipped %d, %d flip(s) vs serial%s\n"
    kill.Dist.k_worker kill.Dist.k_after
    (if killed then "" else " (campaign finished first)")
    st_r.Dist.d_merged st_r.Dist.d_skipped resume_flips
    (if resume_flips > 0 then "  VERDICT FLIP" else "");
  (* Supervised-restart lane: same kill, `Restart mode — the supervisor
     revives the worker and the run completes on its own. *)
  (match entries with
  | [] -> ()
  | e :: _ ->
      let cells = dist_cells e in
      let jr = tmp "restart" in
      let rows, st =
        run_lane
          ~kill:{ Dist.k_worker = 0; k_after = 1; k_mode = `Restart }
          ~workers ~journal:jr ~arg:e.Entry.name ~resume:false cells
      in
      sweep jr;
      let ref_rows = List.filteri (fun i _ -> i < List.length cells) !serial_rows in
      let flips =
        List.fold_left2
          (fun n a b -> if dist_verdict a <> dist_verdict b then n + 1 else n)
          0 ref_rows rows
      in
      dist_flips := !dist_flips + flips;
      json_dist_restarts := !json_dist_restarts + st.Dist.d_restarts;
      Printf.printf
        "restart lane (%s): worker 0 SIGKILLed after 1 ack, %d supervised \
         restart(s), %d give-up(s), %d flip(s)%s\n"
        e.Entry.name st.Dist.d_restarts st.Dist.d_gave_up flips
        (if flips > 0 then "  VERDICT FLIP" else ""));
  if !dist_flips = 0 then
    Printf.printf
      "serial, distributed, kill/resume and restart lanes: all %d cells agree\n"
      (List.length all_cells)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("t1", t1); ("t2", t2); ("t3", t3); ("t4", t4); ("t5", t5);
    ("a1", a1); ("a2", a2); ("a3", a3); ("s1", s1);
    ("f1", f1); ("f2", f2); ("f3", f3);
    ("rob", rob); ("p1", p1); ("c1", c1); ("r2", r2); ("dist", dist_exp);
    ("obs", obs_exp); ("micro", micro);
  ]

let () =
  (* Dist workers are this binary re-exec'd: a worker invocation takes
     over here (recognized by its environment) before argv is parsed. *)
  Dist.worker_entry ();
  let json_path = ref None in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs := j;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --jobs expects a positive integer";
            exit 2
      end
    | [ "--jobs" ] ->
        prerr_endline "bench: --jobs expects a positive integer";
        exit 2
    | "--no-simplify" :: rest ->
        pipeline := Bmc.no_simplify;
        parse_args acc rest
    | "--timeout" :: s :: rest -> begin
        match float_of_string_opt s with
        | Some t when t > 0.0 ->
            timeout := Some t;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --timeout expects a positive number of seconds";
            exit 2
      end
    | [ "--timeout" ] ->
        prerr_endline "bench: --timeout expects a positive number of seconds";
        exit 2
    | "--max-conflicts" :: s :: rest -> begin
        match int_of_string_opt s with
        | Some n when n >= 1 ->
            max_conflicts := Some n;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --max-conflicts expects a positive integer";
            exit 2
      end
    | [ "--max-conflicts" ] ->
        prerr_endline "bench: --max-conflicts expects a positive integer";
        exit 2
    | "--no-escalate" :: rest ->
        escalate := false;
        parse_args acc rest
    | "--portfolio" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some w when w >= 1 ->
            portfolio_width := w;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --portfolio expects a positive integer";
            exit 2
      end
    | [ "--portfolio" ] ->
        prerr_endline "bench: --portfolio expects a positive integer";
        exit 2
    | "--no-share" :: rest ->
        portfolio_share := false;
        parse_args acc rest
    | "--no-reuse" :: rest ->
        reuse_on := false;
        parse_args acc rest
    | "--workers" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some w when w >= 1 ->
            dist_workers := w;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --workers expects a positive integer";
            exit 2
      end
    | [ "--workers" ] ->
        prerr_endline "bench: --workers expects a positive integer";
        exit 2
    | "--batch" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some b when b >= 1 ->
            dist_batch := b;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --batch expects a positive integer";
            exit 2
      end
    | [ "--batch" ] ->
        prerr_endline "bench: --batch expects a positive integer";
        exit 2
    | "--max-restarts" :: n :: rest -> begin
        match int_of_string_opt n with
        | Some r when r >= 0 ->
            dist_max_restarts := r;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --max-restarts expects a non-negative integer";
            exit 2
      end
    | [ "--max-restarts" ] ->
        prerr_endline "bench: --max-restarts expects a non-negative integer";
        exit 2
    | "--backoff" :: s :: rest -> begin
        match float_of_string_opt s with
        | Some b when b >= 0.0 ->
            dist_backoff := b;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --backoff expects a non-negative number of seconds";
            exit 2
      end
    | [ "--backoff" ] ->
        prerr_endline "bench: --backoff expects a non-negative number of seconds";
        exit 2
    | "--no-retry-oom" :: rest ->
        dist_retry_oom := false;
        parse_args acc rest
    | "--designs" :: names :: rest ->
        design_filter := Some (String.split_on_char ',' names);
        parse_args acc rest
    | [ "--designs" ] ->
        prerr_endline "bench: --designs expects a comma-separated list";
        exit 2
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse_args acc rest
    | [ "--json" ] ->
        prerr_endline "bench: --json expects a file path";
        exit 2
    | "--trace" :: path :: rest ->
        obs_trace_path := Some path;
        parse_args acc rest
    | [ "--trace" ] ->
        prerr_endline "bench: --trace expects a file path";
        exit 2
    | "--metrics" :: path :: rest ->
        obs_metrics_path := Some path;
        parse_args acc rest
    | [ "--metrics" ] ->
        prerr_endline "bench: --metrics expects a file path";
        exit 2
    | "--trace-format" :: f :: rest -> begin
        match f with
        | "ndjson" ->
            obs_format := `Ndjson;
            parse_args acc rest
        | "chrome" ->
            obs_format := `Chrome;
            parse_args acc rest
        | _ ->
            prerr_endline "bench: --trace-format expects ndjson or chrome";
            exit 2
      end
    | [ "--trace-format" ] ->
        prerr_endline "bench: --trace-format expects ndjson or chrome";
        exit 2
    | "--force" :: rest ->
        force_overwrite := true;
        parse_args acc rest
    | "--checkpoint" :: path :: rest ->
        checkpoint_path := Some path;
        parse_args acc rest
    | [ "--checkpoint" ] ->
        prerr_endline "bench: --checkpoint expects a file path";
        exit 2
    | "--resume" :: rest ->
        checkpoint_resume := true;
        parse_args acc rest
    | "--seed" :: s :: rest -> begin
        match int_of_string_opt s with
        | Some n ->
            seed := n;
            parse_args acc rest
        | None ->
            prerr_endline "bench: --seed expects an integer";
            exit 2
      end
    | [ "--seed" ] ->
        prerr_endline "bench: --seed expects an integer";
        exit 2
    | id :: rest -> parse_args (id :: acc) rest
  in
  let requested =
    match parse_args [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | ids -> ids
  in
  (* Output-file guards run only after the whole command line is parsed, so
     --force works in any position. Refusing to clobber an existing report
     beats discovering the loss after an hour-long run. *)
  List.iter
    (fun (flag, path) ->
      match path with
      | None -> ()
      | Some path -> (
          match Obs.Export.guard ~force:!force_overwrite path with
          | Error msg ->
              prerr_endline ("bench: " ^ msg);
              exit 2
          | Ok () -> (
              (* Fail fast on an unwritable path rather than after the run. *)
              try close_out (open_out path)
              with Sys_error e ->
                Printf.eprintf "bench: cannot write %s file: %s\n" flag e;
                exit 2)))
    [
      ("--json", !json_path);
      ("--trace", !obs_trace_path);
      ("--metrics", !obs_metrics_path);
    ];
  if !obs_trace_path <> None || !obs_metrics_path <> None then Obs.enable ();
  (* The journal has its own guard (inside Campaign.start): an existing
     file needs --resume to continue or --force to start over, and
     --resume without a journal is an error, not a silent cold start. *)
  (match (!checkpoint_path, !checkpoint_resume) with
  | None, true ->
      prerr_endline "bench: --resume requires --checkpoint FILE";
      exit 2
  | None, false -> ()
  | Some path, resume -> (
      match Persist.Campaign.start ~resume ~force:!force_overwrite path with
      | Ok c -> campaign := Some c
      | Error msg ->
          prerr_endline ("bench: " ^ msg);
          exit 2));
  List.iter
    (fun id ->
      if not (List.mem_assoc id experiments) then begin
        Printf.eprintf "bench: unknown experiment %s (known: %s)\n" id
          (String.concat " " (List.map fst experiments));
        exit 2
      end)
    requested;
  Printf.printf "G-QED reproduction harness — %d experiment(s), %d job(s)\n"
    (List.length requested) !jobs;
  List.iter
    (fun id ->
      let f = List.assoc id experiments in
      par_task_seconds := 0.0;
      let (), dt = time f in
      json_experiments :=
        !json_experiments
        @ [
            {
              je_id = id;
              je_wall_s = dt;
              je_task_sum_s = !par_task_seconds;
              je_starved = Report.is_starved id;
            };
          ];
      Printf.printf "[%s completed in %.1fs]\n%!" id dt)
    requested;
  (match !obs_trace_path with
  | None -> ()
  | Some path ->
      let evs = Obs.Trace.events () in
      Obs.Trace.write ~format:!obs_format path evs;
      Printf.printf "trace written to %s (%d events)\n" path (List.length evs));
  (match !obs_metrics_path with
  | None -> ()
  | Some path ->
      Obs.Metrics.write path (Obs.Metrics.snapshot ());
      Printf.printf "metrics written to %s\n" path);
  (match !campaign with
  | None -> ()
  | Some c ->
      let s = Persist.Campaign.stats c in
      Printf.printf
        "campaign journal %s: %d record(s) loaded (%d undecided), %d check(s) skipped, \
         %d appended%s%s\n"
        (Persist.Campaign.path c) s.Persist.Campaign.c_loaded
        s.Persist.Campaign.c_undecided_loaded (Atomic.get campaign_skips)
        s.Persist.Campaign.c_appended
        (if s.Persist.Campaign.c_recovered_bytes > 0 then
           Printf.sprintf " (%d corrupt tail byte(s) dropped)"
             s.Persist.Campaign.c_recovered_bytes
         else "")
        (if s.Persist.Campaign.c_write_errors > 0 then
           Printf.sprintf " (%d append(s) LOST to I/O errors)"
             s.Persist.Campaign.c_write_errors
         else "");
      Persist.Campaign.close c);
  (match !json_path with None -> () | Some path -> write_json path);
  if !verdict_mismatches > 0 then begin
    Printf.eprintf
      "bench: FAILED — %d verdict mismatch(es) between pipeline configurations\n"
      !verdict_mismatches;
    exit 1
  end;
  if !rob_flips > 0 then begin
    Printf.eprintf "bench: FAILED — %d fault-induced verdict flip(s)\n" !rob_flips;
    exit 1
  end;
  if !portfolio_flips > 0 then begin
    Printf.eprintf
      "bench: FAILED — %d portfolio-vs-single verdict flip(s)\n" !portfolio_flips;
    exit 1
  end;
  if !obs_flips > 0 then begin
    Printf.eprintf
      "bench: FAILED — %d traced-vs-untraced verdict flip(s)\n" !obs_flips;
    exit 1
  end;
  if !obs_malformed > 0 then begin
    Printf.eprintf
      "bench: FAILED — %d malformed or empty trace(s) in the obs experiment\n"
      !obs_malformed;
    exit 1
  end;
  if !reuse_flips > 0 then begin
    Printf.eprintf
      "bench: FAILED — %d cross-query-reuse verdict flip(s)\n" !reuse_flips;
    exit 1
  end;
  if !campaign_flips > 0 then begin
    Printf.eprintf
      "bench: FAILED — %d kill/resume campaign verdict flip(s)\n" !campaign_flips;
    exit 1
  end;
  if !dist_flips > 0 then begin
    Printf.eprintf
      "bench: FAILED — %d distributed-vs-serial verdict flip(s)\n" !dist_flips;
    exit 1
  end;
  (* Distinct exit code for "nothing wrong, but some verdicts stayed unknown
     under the --timeout/--max-conflicts budget". *)
  let unknowns = Atomic.get unknown_verdicts in
  if unknowns > 0 then begin
    Printf.eprintf
      "bench: %d verdict(s) unknown under the configured budget (raise --timeout or \
       --max-conflicts, or drop --no-escalate)\n"
      unknowns;
    exit 3
  end
