(* Pure report-shaping helpers for the bench harness, split out of [main]
   so the JSON field derivations are unit-testable (the executable itself
   only runs whole experiments). *)

(* Estimated speedup of a fan-out experiment over a 1-domain run of the
   same tasks: task-seconds divided by wall-clock seconds. [None] (emitted
   as JSON null) when the experiment ran no parallel section — and, since
   gqed-bench/5, when it is [starved]: experiments that deliberately
   starve their tasks' budgets (rob runs checks under 1-conflict budgets
   to exercise escalation) produce task timings that say nothing about
   1-domain cost, so a ratio over them is noise dressed up as a figure. *)
let est_speedup_vs_1domain ~starved ~wall_s ~task_sum_s =
  if starved || not (task_sum_s > 0.0) || not (wall_s > 0.0) then None
  else Some (task_sum_s /. wall_s)

(* Experiments whose tasks run under deliberately starved budgets. *)
let starved_experiments = [ "rob" ]
let is_starved id = List.mem id starved_experiments

let json_float_opt = function
  | None -> "null"
  | Some v -> Printf.sprintf "%.3f" v

(* Geometric mean of base/variant over per-design timing pairs, ignoring
   pairs where either side is nonpositive (a design whose whole lane ran
   in under a clock tick carries no signal). [None] when nothing usable
   remains. *)
let geo_mean_ratio pairs =
  let logs =
    List.filter_map
      (fun (base, variant) ->
        if base > 0.0 && variant > 0.0 then Some (log (base /. variant)) else None)
      pairs
  in
  match logs with
  | [] -> None
  | _ ->
      Some (exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs)))
